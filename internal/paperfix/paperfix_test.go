package paperfix

import "testing"

func TestFigure1Fixture(t *testing.T) {
	g := Graph()
	if g.NumNodes() != 7 {
		t.Fatalf("nodes = %d, want 7", g.NumNodes())
	}
	if g.NumEdges() != 12 {
		t.Fatalf("edges = %d, want 12", g.NumEdges())
	}
	if g.NumLabels() != 3 {
		t.Fatalf("labels = %d, want 3", g.NumLabels())
	}
	for _, e := range Edges {
		from, ok := g.NodeByName(e.From)
		if !ok {
			t.Fatalf("node %q missing", e.From)
		}
		to, ok := g.NodeByName(e.To)
		if !ok {
			t.Fatalf("node %q missing", e.To)
		}
		if !g.HasEdge(from, to, e.Label) {
			t.Fatalf("edge %s -%s-> %s missing", e.From, e.Label, e.To)
		}
	}
	alice, _ := g.NodeByName(Alice)
	if v, ok := g.Attr(alice, "age"); !ok || v.Num() != 24 {
		t.Fatalf("λ(Alice).age = %v,%v", v, ok)
	}
	if v, ok := g.Attr(alice, "gender"); !ok || v.Str() != "female" {
		t.Fatalf("λ(Alice).gender = %v,%v", v, ok)
	}
}

func TestGraphReturnsFreshCopies(t *testing.T) {
	g1 := Graph()
	g2 := Graph()
	a, _ := g1.NodeByName(Alice)
	b, _ := g1.NodeByName(Bill)
	// Removing from g1 must not affect g2.
	l, _ := g1.LookupLabel(Friend)
	if err := g1.RemoveEdge(g1.FindEdge(a, b, l)); err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 12 {
		t.Fatal("fixture instances share state")
	}
}

func TestQueriesParse(t *testing.T) {
	if got := Q1().String(); got != "friend+[1,2]/colleague+[1]" {
		t.Fatalf("Q1 = %q", got)
	}
	if len(QFriendParentFriend().Steps) != 3 {
		t.Fatal("QFriendParentFriend steps")
	}
	if QDavidConsidersFriend().Steps[0].Dir.String() != "-" {
		t.Fatal("QDavidConsidersFriend direction")
	}
	if FriendDepth3Chain().Steps[0].MinDepth != 3 {
		t.Fatal("FriendDepth3Chain depth")
	}
}
