// Package benchutil provides the small shared helpers the experiment
// drivers use to print the E-series tables: fixed-width text tables and
// compact duration/size formatting.
package benchutil

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; missing cells render empty, extra cells are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if n := utf8.RuneCountInString(c); n > width[i] {
				width[i] = n
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	printRow := func(r []string) {
		var b strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width[i]-utf8.RuneCountInString(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.headers)
	var sep []string
	for i := 0; i < cols; i++ {
		sep = append(sep, strings.Repeat("-", width[i]))
	}
	printRow(sep)
	for _, r := range t.rows {
		printRow(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Dur formats a duration compactly with three significant-ish digits.
func Dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Bytes formats a byte count with binary units.
func Bytes(n int) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	}
}

// Count formats large counts with thousands separators.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
