package benchutil

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "count")
	tb.AddRow("alpha", "1")
	tb.AddRow("very-long-name", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "count") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator = %q", lines[1])
	}
	// Columns aligned: "count" column starts at the same offset everywhere.
	off := strings.Index(lines[0], "count")
	if lines[2][off-1] != ' ' && lines[2][off] == ' ' {
		t.Fatalf("misaligned row: %q", lines[2])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "extra")
	tb.AddRow()
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2500 * time.Microsecond: "2.50ms",
		3 * time.Second:         "3.00s",
	}
	for d, want := range cases {
		if got := Dur(d); got != want {
			t.Errorf("Dur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[int]string{
		12:      "12B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.00GiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestCount(t *testing.T) {
	cases := map[int]string{
		7:        "7",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		12345678: "12,345,678",
	}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}
