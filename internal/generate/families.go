package generate

import (
	"math/rand"

	"reachac/internal/graph"
)

// edgeKey identifies a directed typed edge for duplicate suppression.
// Streams must be dup-free (the Topology contract), so each family
// re-implements the duplicate check graph.AddEdge used to perform.
type edgeKey struct {
	from, to graph.NodeID
	label    string
}

func emitNodes(n int, emit func(Op) error) error {
	for i := 0; i < n; i++ {
		if err := emit(Op{Kind: OpNode, Name: UserName(i)}); err != nil {
			return err
		}
	}
	return nil
}

// --- Erdős–Rényi -----------------------------------------------------

type erTopology struct{ cfg config }

func (t *erTopology) Kind() string { return "er" }
func (t *erTopology) Nodes() int   { return t.cfg.nodes }
func (t *erTopology) Seed() int64  { return t.cfg.seed }

func (t *erTopology) Stream(emit func(Op) error) error {
	c := t.cfg
	rng := rand.New(rand.NewSource(c.seed))
	if err := emitNodes(c.nodes, emit); err != nil {
		return err
	}
	seen := make(map[edgeKey]struct{}, c.edges)
	for added := 0; added < c.edges; {
		u := graph.NodeID(rng.Intn(c.nodes))
		v := graph.NodeID(rng.Intn(c.nodes))
		if u == v {
			continue
		}
		label := c.labels[rng.Intn(len(c.labels))]
		key := edgeKey{u, v, label}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if err := emit(Op{Kind: OpEdge, From: u, To: v, Label: label}); err != nil {
			return err
		}
		added++
	}
	return nil
}

// --- Barabási–Albert -------------------------------------------------

type baTopology struct{ cfg config }

func (t *baTopology) Kind() string { return "ba" }
func (t *baTopology) Nodes() int   { return t.cfg.nodes }
func (t *baTopology) Seed() int64  { return t.cfg.seed }

func (t *baTopology) Stream(emit func(Op) error) error {
	c := t.cfg
	rng := rand.New(rand.NewSource(c.seed))
	if err := emitNodes(c.nodes, emit); err != nil {
		return err
	}
	// targets repeats each vertex once per incident edge end, implementing
	// degree-proportional sampling. Edges out of v are all placed in v's
	// iteration, so duplicate suppression is per source.
	targets := []graph.NodeID{0}
	seen := make(map[edgeKey]struct{}, c.degree)
	for v := 1; v < c.nodes; v++ {
		links := c.degree
		if v < links {
			links = v
		}
		for k := range seen {
			delete(seen, k)
		}
		for e := 0; e < links; e++ {
			u := targets[rng.Intn(len(targets))]
			if u == graph.NodeID(v) {
				continue
			}
			label := c.labels[rng.Intn(len(c.labels))]
			key := edgeKey{graph.NodeID(v), u, label}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if err := emit(Op{Kind: OpEdge, From: graph.NodeID(v), To: u, Label: label}); err != nil {
				return err
			}
			targets = append(targets, u)
		}
		targets = append(targets, graph.NodeID(v))
	}
	return nil
}

// --- Watts–Strogatz --------------------------------------------------

type wsTopology struct{ cfg config }

func (t *wsTopology) Kind() string { return "ws" }
func (t *wsTopology) Nodes() int   { return t.cfg.nodes }
func (t *wsTopology) Seed() int64  { return t.cfg.seed }

func (t *wsTopology) Stream(emit func(Op) error) error {
	c := t.cfg
	rng := rand.New(rand.NewSource(c.seed))
	if err := emitNodes(c.nodes, emit); err != nil {
		return err
	}
	seen := make(map[edgeKey]struct{}, c.degree)
	for v := 0; v < c.nodes; v++ {
		for k := range seen {
			delete(seen, k)
		}
		for j := 1; j <= c.degree; j++ {
			to := graph.NodeID((v + j) % c.nodes)
			if rng.Float64() < c.beta {
				to = graph.NodeID(rng.Intn(c.nodes))
			}
			if to == graph.NodeID(v) {
				continue
			}
			label := c.labels[rng.Intn(len(c.labels))]
			key := edgeKey{graph.NodeID(v), to, label}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if err := emit(Op{Kind: OpEdge, From: graph.NodeID(v), To: to, Label: label}); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- OSN -------------------------------------------------------------

var cities = []string{"paris", "berlin", "tunis", "london", "rome", "madrid", "lyon", "oslo"}

// osnTopology is the community-structured social generator. Its stream
// reproduces the legacy OSN() draw sequence exactly — same rng, same
// draw order, with a global seen-set standing in for the duplicate
// rejection graph.AddEdge used to do — so graphs built through the shim
// are byte-identical to pre-redesign output. The preferential pools and
// the seen-set make its working memory O(nodes + edges); the ldbc family
// is the bounded-memory choice for very large streams.
type osnTopology struct{ cfg config }

func (t *osnTopology) Kind() string { return "osn" }
func (t *osnTopology) Nodes() int   { return t.cfg.nodes }
func (t *osnTopology) Seed() int64  { return t.cfg.seed }

func (t *osnTopology) Stream(emit func(Op) error) error {
	c := t.cfg
	rng := rand.New(rand.NewSource(c.seed))

	labels, cum, total := sortedWeightTable(c.labelWeights)
	pickLabel := func() string {
		x := rng.Float64() * total
		for i, w := range cum {
			if x < w {
				return labels[i]
			}
		}
		return labels[len(labels)-1]
	}

	community := make([]int, c.nodes)
	members := make([][]graph.NodeID, c.communities)
	for i := 0; i < c.nodes; i++ {
		cm := i % c.communities
		community[i] = cm
		var attrs graph.Attrs
		if c.withAttrs {
			attrs = graph.Attrs{
				"age":    graph.Int(13 + rng.Intn(68)),
				"city":   graph.String(cities[rng.Intn(len(cities))]),
				"gender": graph.String([]string{"female", "male"}[rng.Intn(2)]),
			}
		}
		if err := emit(Op{Kind: OpNode, Name: UserName(i), Attrs: attrs}); err != nil {
			return err
		}
		members[cm] = append(members[cm], graph.NodeID(i))
	}

	// Per-community preferential target pools.
	pools := make([][]graph.NodeID, c.communities)
	for cm := range pools {
		pools[cm] = append([]graph.NodeID(nil), members[cm]...)
	}

	seen := make(map[edgeKey]struct{}, c.nodes*c.degree)
	for i := 0; i < c.nodes; i++ {
		src := graph.NodeID(i)
		cm := community[i]
		for e := 0; e < c.degree; e++ {
			var dst graph.NodeID
			if rng.Float64() < c.intra {
				dst = pools[cm][rng.Intn(len(pools[cm]))]
			} else {
				dst = graph.NodeID(rng.Intn(c.nodes))
			}
			if dst == src {
				continue
			}
			from, to := src, dst
			if c.acyclic && from < to {
				from, to = to, from
			}
			label := pickLabel()
			key := edgeKey{from, to, label}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if err := emit(Op{Kind: OpEdge, From: from, To: to, Label: label}); err != nil {
				return err
			}
			pools[community[dst]] = append(pools[community[dst]], dst)
			if !c.acyclic && label == "friend" && rng.Float64() < c.reciprocity {
				rkey := edgeKey{dst, src, label}
				if _, dup := seen[rkey]; !dup {
					seen[rkey] = struct{}{}
					if err := emit(Op{Kind: OpEdge, From: dst, To: src, Label: label}); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
