package generate

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"reachac/internal/graph"
)

// OpKind discriminates the two record kinds a Topology emits.
type OpKind uint8

const (
	// OpNode introduces the next member. Nodes are emitted first, in
	// dense ID order: the i-th OpNode is node i.
	OpNode OpKind = iota
	// OpEdge adds one directed typed relationship between two
	// already-introduced members.
	OpEdge
)

// Op is one record of a topology stream. Which fields are meaningful
// depends on Kind.
type Op struct {
	Kind OpKind
	// Name and Attrs describe an OpNode.
	Name  string
	Attrs graph.Attrs
	// From, To and Label describe an OpEdge.
	From, To graph.NodeID
	Label    string
}

// Topology is a seeded synthetic graph emitted as a stream: Stream calls
// emit once per node and once per edge instead of materializing a
// *graph.Graph, so consumers (gengraph's file writer, the facade's
// chunked Batch loader) can build million-node graphs under bounded
// memory.
//
// Contract, relied on by every consumer:
//
//   - Deterministic: two Streams of the same Topology emit byte-identical
//     op sequences. Stream may therefore be called repeatedly (gengraph
//     runs a counting pass before its writing pass).
//   - Nodes first: all OpNode records precede all OpEdge records, and
//     node i of the stream is graph.NodeID(i) (names follow UserName).
//   - Duplicate-free: no two OpEdges carry the same (From, To, Label)
//     triple and no edge is a self-loop, so replaying the stream through
//     graph.AddEdge or Tx.Relate never trips the duplicate check.
//   - An error returned by emit aborts the stream and is returned as is.
type Topology interface {
	// Kind names the generator family ("osn", "ldbc", "er", "ba", "ws").
	Kind() string
	// Nodes is the exact number of OpNode records Stream emits.
	Nodes() int
	// Seed is the stream's random seed.
	Seed() int64
	// Stream emits the topology. See the interface contract above.
	Stream(emit func(Op) error) error
}

// Build materializes a topology into a graph — the convenience path for
// tests, experiments and small benchmark graphs. Large graphs should
// stream instead (reachac.Network.LoadTopology, gengraph).
func Build(t Topology) (*graph.Graph, error) {
	g := graph.New()
	err := t.Stream(func(op Op) error {
		switch op.Kind {
		case OpNode:
			_, err := g.AddNode(op.Name, op.Attrs)
			return err
		case OpEdge:
			_, err := g.AddEdge(op.From, op.To, op.Label)
			return err
		default:
			return fmt.Errorf("generate: unknown op kind %d", op.Kind)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("generate: building %s topology: %w", t.Kind(), err)
	}
	return g, nil
}

// MustBuild is Build for fixtures and tests; it panics on error.
func MustBuild(t Topology) *graph.Graph {
	g, err := Build(t)
	if err != nil {
		panic(err)
	}
	return g
}

// Count streams the topology once, discarding ops, and returns the exact
// node and edge counts — the header pass of gengraph's two-pass streaming
// writer.
func Count(t Topology) (nodes, edges int, err error) {
	err = t.Stream(func(op Op) error {
		if op.Kind == OpNode {
			nodes++
		} else {
			edges++
		}
		return nil
	})
	return nodes, edges, err
}

// Fingerprint hashes the canonical encoding of the full op stream
// (FNV-1a 64). Two topologies with the same fingerprint emitted the same
// stream byte for byte — the determinism property the tests and the
// artifact comparability rest on.
func Fingerprint(t Topology) (uint64, error) {
	h := fnv.New64a()
	var scratch [9]byte
	err := t.Stream(func(op Op) error {
		scratch[0] = byte(op.Kind)
		binary.LittleEndian.PutUint32(scratch[1:5], uint32(op.From))
		binary.LittleEndian.PutUint32(scratch[5:9], uint32(op.To))
		h.Write(scratch[:])
		h.Write([]byte(op.Name))
		h.Write([]byte(op.Label))
		if len(op.Attrs) > 0 {
			keys := make([]string, 0, len(op.Attrs))
			for k := range op.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h.Write([]byte(k))
				h.Write([]byte(op.Attrs[k].String()))
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
