package generate

import (
	"errors"
	"testing"

	"reachac/internal/graph"
)

func allKindsSmall() map[string]Topology {
	return map[string]Topology{
		"osn":  MustNew("osn", WithNodes(300), WithSeed(7), WithAttrs()),
		"ldbc": MustNew("ldbc", WithNodes(300), WithSeed(7), WithCommunities(6)),
		"er":   MustNew("er", WithNodes(120), WithEdges(400), WithSeed(7)),
		"ba":   MustNew("ba", WithNodes(200), WithDegree(3), WithSeed(7)),
		"ws":   MustNew("ws", WithNodes(150), WithDegree(3), WithRewire(0.1), WithSeed(7)),
	}
}

// TestTopologyDeterminism: same seed → byte-identical op stream
// (fingerprint equality), different seed → different stream. This is the
// property gengraph's two-pass writer and acbench's cross-run
// comparability rest on.
func TestTopologyDeterminism(t *testing.T) {
	for kind, top := range allKindsSmall() {
		a, err := Fingerprint(top)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := Fingerprint(top)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a != b {
			t.Fatalf("%s: two streams of one topology differ: %x vs %x", kind, a, b)
		}
		reseeded := map[string]Topology{
			"osn":  MustNew("osn", WithNodes(300), WithSeed(8), WithAttrs()),
			"ldbc": MustNew("ldbc", WithNodes(300), WithSeed(8), WithCommunities(6)),
			"er":   MustNew("er", WithNodes(120), WithEdges(400), WithSeed(8)),
			"ba":   MustNew("ba", WithNodes(200), WithDegree(3), WithSeed(8)),
			"ws":   MustNew("ws", WithNodes(150), WithDegree(3), WithRewire(0.1), WithSeed(8)),
		}[kind]
		c, err := Fingerprint(reseeded)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if a == c {
			t.Fatalf("%s: different seeds produced identical streams", kind)
		}
	}
}

// TestTopologyContract checks the stream invariants every consumer
// relies on: all nodes precede all edges, node i is named UserName(i),
// edge endpoints reference already-emitted nodes, and the stream is
// self-loop- and duplicate-free (replaying through graph.AddEdge never
// errors).
func TestTopologyContract(t *testing.T) {
	for kind, top := range allKindsSmall() {
		g := graph.New()
		edgesStarted := false
		nodes := 0
		err := top.Stream(func(op Op) error {
			switch op.Kind {
			case OpNode:
				if edgesStarted {
					t.Fatalf("%s: node op after first edge op", kind)
				}
				if want := UserName(nodes); op.Name != want {
					t.Fatalf("%s: node %d named %q, want %q", kind, nodes, op.Name, want)
				}
				nodes++
				_, err := g.AddNode(op.Name, op.Attrs)
				return err
			case OpEdge:
				edgesStarted = true
				if int(op.From) >= nodes || int(op.To) >= nodes {
					t.Fatalf("%s: edge %d->%d references unseen node", kind, op.From, op.To)
				}
				_, err := g.AddEdge(op.From, op.To, op.Label)
				return err
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: replay through graph mutators failed: %v", kind, err)
		}
		if nodes != top.Nodes() {
			t.Fatalf("%s: emitted %d nodes, Nodes() says %d", kind, nodes, top.Nodes())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: no edges", kind)
		}
	}
}

// TestTopologyCountMatchesBuild: Count's totals must equal the
// materialized graph's — gengraph writes Count's numbers into the file
// header before streaming records.
func TestTopologyCountMatchesBuild(t *testing.T) {
	for kind, top := range allKindsSmall() {
		n, e, err := Count(top)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		g := MustBuild(top)
		if n != g.NumNodes() || e != g.NumEdges() {
			t.Fatalf("%s: Count = (%d, %d), Build = (%d, %d)",
				kind, n, e, g.NumNodes(), g.NumEdges())
		}
	}
}

// TestLDBCDegreeShape asserts the power-law signatures at small n: mean
// out-degree near the configured target, a popularity hub (max in-degree
// far above the mean — Chung-Lu target sampling), and a fan-out hub (max
// out-degree above the Pareto mean).
func TestLDBCDegreeShape(t *testing.T) {
	const n, degree = 2000, 8
	g := MustBuild(MustNew("ldbc", WithNodes(n), WithDegree(degree), WithSeed(11)))
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	mean := float64(g.NumEdges()) / float64(n)
	if mean < 0.5*degree || mean > 1.5*degree {
		t.Fatalf("mean out-degree %.1f, want near %d", mean, degree)
	}
	maxIn, maxOut := 0, 0
	for i := 0; i < n; i++ {
		if d := g.InDegree(graph.NodeID(i)); d > maxIn {
			maxIn = d
		}
		if d := g.OutDegree(graph.NodeID(i)); d > maxOut {
			maxOut = d
		}
	}
	if float64(maxIn) < 8*mean {
		t.Fatalf("no popularity hub: max in-degree %d vs mean %.1f", maxIn, mean)
	}
	if float64(maxOut) < 2*mean {
		t.Fatalf("no fan-out tail: max out-degree %d vs mean %.1f", maxOut, mean)
	}
}

// TestLDBCCommunityBias: with K communities assigned round-robin, an
// intra probability of 0.9 must leave most edges inside their source's
// community.
func TestLDBCCommunityBias(t *testing.T) {
	const k = 8
	g := MustBuild(MustNew("ldbc",
		WithNodes(800), WithCommunities(k), WithIntraProb(0.9), WithSeed(9)))
	intra, total := 0, 0
	g.Edges(func(e graph.Edge) bool {
		total++
		if int(e.From)%k == int(e.To)%k {
			intra++
		}
		return true
	})
	if frac := float64(intra) / float64(total); frac < 0.6 {
		t.Fatalf("intra-community fraction = %.2f, expected clustering", frac)
	}
}

// TestLDBCAttrs: WithAttrs decorates every member.
func TestLDBCAttrs(t *testing.T) {
	g := MustBuild(MustNew("ldbc", WithNodes(50), WithSeed(1), WithAttrs()))
	for i := 0; i < 50; i++ {
		if _, ok := g.Attr(graph.NodeID(i), "age"); !ok {
			t.Fatalf("node %d missing attrs", i)
		}
	}
}

// TestOSNShimByteIdentical pins the shim's output against a frozen
// fingerprint so future refactors cannot silently shift the draw
// sequence legacy call sites (bench baselines, experiment scripts)
// depend on.
func TestOSNShimByteIdentical(t *testing.T) {
	top := MustNew("osn", cfgToOptions(OSNConfig{Nodes: 300, Seed: 2})...)
	fp, err := Fingerprint(top)
	if err != nil {
		t.Fatal(err)
	}
	// Independently regenerate via the legacy entry point and compare
	// edge sets — OSN() and the topology must describe the same graph.
	g := OSN(OSNConfig{Nodes: 300, Seed: 2})
	h := MustBuild(top)
	if g.NumEdges() != h.NumEdges() || g.NumNodes() != h.NumNodes() {
		t.Fatalf("shim and topology disagree: (%d,%d) vs (%d,%d)",
			g.NumNodes(), g.NumEdges(), h.NumNodes(), h.NumEdges())
	}
	g.Edges(func(e graph.Edge) bool {
		if !h.HasEdge(e.From, e.To, g.LabelName(e.Label)) {
			t.Fatalf("edge %v missing from topology build", e)
		}
		return true
	})
	if fp == 0 {
		t.Fatal("implausible zero fingerprint")
	}
}

func cfgToOptions(c OSNConfig) []Option { return c.options() }

// TestNewRejectsBadConfigs covers New's validation surface.
func TestNewRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		kind string
		opts []Option
	}{
		{"warp", []Option{WithNodes(10)}},
		{"osn", nil}, // missing nodes
		{"ldbc", []Option{WithNodes(10), WithAcyclic()}},
		{"ldbc", []Option{WithNodes(10), WithReciprocity(0.5)}},
		{"ldbc", []Option{WithNodes(10), WithPowerLaw(1.5)}},
		{"ldbc", []Option{WithNodes(10), WithDegreeTail(0.5)}},
		{"er", []Option{WithNodes(3), WithEdges(1000), WithLabels("friend")}},
	}
	for _, tc := range cases {
		if _, err := New(tc.kind, tc.opts...); err == nil {
			t.Errorf("New(%q, %d opts) accepted a bad config", tc.kind, len(tc.opts))
		}
	}
}

// TestStreamAbortsOnEmitError: an emit error must stop the stream and
// surface unchanged — gengraph's nonzero-exit-on-partial-write depends
// on it.
func TestStreamAbortsOnEmitError(t *testing.T) {
	sentinel := errors.New("disk full")
	for kind, top := range allKindsSmall() {
		calls := 0
		err := top.Stream(func(Op) error {
			calls++
			if calls == 5 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("%s: emit error not propagated: %v", kind, err)
		}
		if calls != 5 {
			t.Fatalf("%s: stream continued after error (%d calls)", kind, calls)
		}
	}
}
