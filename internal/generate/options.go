package generate

import (
	"fmt"
	"sort"
	"strings"
)

// config carries every knob a family can consume. Families read only the
// fields that apply to them; New resolves defaults per kind.
type config struct {
	kind         string
	nodes        int
	seed         int64
	communities  int
	degree       int
	edges        int
	intra        float64
	labels       []string
	labelWeights map[string]float64
	withAttrs    bool
	acyclic      bool
	reciprocity  float64
	beta         float64
	gamma        float64
	alpha        float64
	maxDegree    int
}

// Option configures a Topology under construction by New.
type Option func(*config)

// WithNodes sets the member count. Required for every kind.
func WithNodes(n int) Option { return func(c *config) { c.nodes = n } }

// WithSeed sets the random seed; every stream of the resulting Topology
// is a pure function of kind, options and seed.
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithCommunities sets the number of planted communities (osn, ldbc).
// Members are assigned round-robin: node i belongs to community i mod k.
func WithCommunities(k int) Option { return func(c *config) { c.communities = k } }

// WithDegree sets the target mean out-degree (osn, ldbc) or the per-node
// attachment/lattice degree (ba, ws).
func WithDegree(d int) Option { return func(c *config) { c.degree = d } }

// WithEdges sets the exact edge count for the er kind.
func WithEdges(m int) Option { return func(c *config) { c.edges = m } }

// WithIntraProb sets the probability an edge stays inside its source's
// community (osn, ldbc; default 0.8).
func WithIntraProb(p float64) Option { return func(c *config) { c.intra = p } }

// WithLabels sets the uniformly-sampled relationship types for the
// er/ba/ws kinds (default friend, colleague, parent, follows).
func WithLabels(labels ...string) Option {
	return func(c *config) { c.labels = append([]string(nil), labels...) }
}

// WithLabelWeights sets the weighted relationship-type mix for the
// osn/ldbc kinds (default friend 0.65, colleague 0.2, parent 0.05,
// follows 0.1).
func WithLabelWeights(w map[string]float64) Option {
	return func(c *config) {
		c.labelWeights = make(map[string]float64, len(w))
		for k, v := range w {
			c.labelWeights[k] = v
		}
	}
}

// WithAttrs adds age/city/gender attributes to every member (osn, ldbc).
func WithAttrs() Option { return func(c *config) { c.withAttrs = true } }

// WithAcyclic orients every osn edge from the higher member id to the
// lower, producing an acyclic hierarchy; reciprocity is ignored.
func WithAcyclic() Option { return func(c *config) { c.acyclic = true } }

// WithReciprocity sets the probability an osn friend edge is
// reciprocated (default 0.5; values <= 0 fall back to the default, a
// quirk kept from the legacy OSNConfig).
func WithReciprocity(p float64) Option { return func(c *config) { c.reciprocity = p } }

// WithRewire sets the Watts–Strogatz rewiring probability beta
// (default 0.1).
func WithRewire(beta float64) Option { return func(c *config) { c.beta = beta } }

// WithPowerLaw sets the ldbc target-popularity exponent gamma in (0, 1):
// the chance an edge lands on the rank-r member falls off as
// (r+1)^-gamma, so the in-degree distribution is power-law with exponent
// about 1 + 1/gamma (default 0.65 — exponent ~2.5, the social-network
// regime).
func WithPowerLaw(gamma float64) Option { return func(c *config) { c.gamma = gamma } }

// WithDegreeTail sets the ldbc out-degree Pareto shape alpha > 1
// (default 2.5); smaller alpha means heavier-tailed fan-out.
func WithDegreeTail(alpha float64) Option { return func(c *config) { c.alpha = alpha } }

// WithMaxDegree caps the ldbc per-member out-degree (default
// 16*degree + 48, always further clamped to nodes-1).
func WithMaxDegree(d int) Option { return func(c *config) { c.maxDegree = d } }

// Kinds lists the topology families New accepts, in documentation order.
func Kinds() []string { return []string{"osn", "ldbc", "er", "ba", "ws"} }

// New builds a Topology of the named kind:
//
//	osn   community-structured social graph with typed edges, hubs from
//	      per-community preferential pools, optional reciprocity,
//	      attributes and acyclic orientation (the legacy OSN generator).
//	ldbc  LDBC-style power-law social graph: Chung-Lu target sampling
//	      with a closed-form inverse CDF, Pareto out-degrees and planted
//	      communities; O(degree) working memory per node, so it is the
//	      family for million-node streams.
//	er    directed Erdős–Rényi G(n, m).
//	ba    Barabási–Albert preferential attachment.
//	ws    Watts–Strogatz small-world ring lattice.
//
// Every kind requires WithNodes; everything else defaults per kind. The
// returned Topology is immutable and safe for repeated Streams.
func New(kind string, opts ...Option) (Topology, error) {
	// beta starts at -1 so WithRewire(0) (a pure, unrewired lattice) is
	// distinguishable from "not set".
	c := config{kind: kind, beta: -1}
	for _, o := range opts {
		o(&c)
	}
	if c.nodes <= 0 {
		return nil, fmt.Errorf("generate: kind %q needs WithNodes(n > 0), got %d", kind, c.nodes)
	}
	switch kind {
	case "osn":
		c.osnDefaults()
		return &osnTopology{cfg: c}, nil
	case "ldbc":
		if c.acyclic {
			return nil, fmt.Errorf("generate: ldbc does not support WithAcyclic (use osn)")
		}
		if c.reciprocity > 0 {
			return nil, fmt.Errorf("generate: ldbc does not support WithReciprocity (use osn)")
		}
		c.ldbcDefaults()
		if c.gamma <= 0 || c.gamma >= 1 {
			return nil, fmt.Errorf("generate: ldbc power-law gamma must be in (0,1), got %g", c.gamma)
		}
		if c.alpha <= 1 {
			return nil, fmt.Errorf("generate: ldbc degree-tail alpha must be > 1, got %g", c.alpha)
		}
		return &ldbcTopology{cfg: c}, nil
	case "er":
		c.uniformDefaults()
		if c.edges <= 0 {
			c.edges = 4 * c.nodes
		}
		if maxEdges := c.nodes * (c.nodes - 1) * len(c.labels); c.edges > maxEdges {
			return nil, fmt.Errorf("generate: er cannot place %d distinct edges on %d nodes", c.edges, c.nodes)
		}
		return &erTopology{cfg: c}, nil
	case "ba":
		if c.degree <= 0 {
			c.degree = 3
		}
		c.uniformDefaults()
		return &baTopology{cfg: c}, nil
	case "ws":
		if c.degree <= 0 {
			c.degree = 3
		}
		if c.beta < 0 {
			c.beta = 0.1
		}
		c.uniformDefaults()
		return &wsTopology{cfg: c}, nil
	default:
		return nil, fmt.Errorf("generate: unknown topology kind %q (kinds: %s)", kind, strings.Join(Kinds(), ", "))
	}
}

// MustNew is New for fixtures; it panics on error.
func MustNew(kind string, opts ...Option) Topology {
	t, err := New(kind, opts...)
	if err != nil {
		panic(err)
	}
	return t
}

var defaultLabels = []string{"friend", "colleague", "parent", "follows"}

func (c *config) uniformDefaults() {
	if len(c.labels) == 0 {
		c.labels = append([]string(nil), defaultLabels...)
	}
}

func (c *config) osnDefaults() {
	if c.communities <= 0 {
		c.communities = c.nodes/500 + 4
	}
	if c.degree <= 0 {
		c.degree = 8
	}
	if c.intra <= 0 {
		c.intra = 0.8
	}
	if len(c.labelWeights) == 0 {
		c.labelWeights = map[string]float64{
			"friend": 0.65, "colleague": 0.2, "parent": 0.05, "follows": 0.1,
		}
	}
	if c.reciprocity <= 0 {
		c.reciprocity = 0.5
	}
}

func (c *config) ldbcDefaults() {
	if c.communities <= 0 {
		c.communities = c.nodes/1000 + 8
	}
	if c.communities > c.nodes {
		c.communities = c.nodes
	}
	if c.degree <= 0 {
		c.degree = 8
	}
	if c.intra <= 0 {
		c.intra = 0.8
	}
	if len(c.labelWeights) == 0 {
		c.labelWeights = map[string]float64{
			"friend": 0.65, "colleague": 0.2, "parent": 0.05, "follows": 0.1,
		}
	}
	if c.gamma == 0 {
		c.gamma = 0.65
	}
	if c.alpha == 0 {
		c.alpha = 2.5
	}
	if c.maxDegree <= 0 {
		c.maxDegree = 16*c.degree + 48
	}
	if c.maxDegree > c.nodes-1 {
		c.maxDegree = c.nodes - 1
	}
}

// sortedWeightTable flattens a label-weight map into the cumulative table
// weighted samplers walk; label order is sorted for determinism.
func sortedWeightTable(w map[string]float64) (labels []string, cum []float64, total float64) {
	labels = make([]string, 0, len(w))
	for l := range w {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	cum = make([]float64, len(labels))
	for i, l := range labels {
		total += w[l]
		cum[i] = total
	}
	return labels, cum, total
}
