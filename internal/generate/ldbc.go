package generate

import (
	"math"
	"math/rand"

	"reachac/internal/graph"
)

// ldbcTopology is the scalable power-law family: LDBC-SNB-style social
// shape (heavy-tailed popularity, heavy-tailed fan-out, planted
// communities) generated with O(degree) working memory per node, so a
// million-node build streams in constant space.
//
// Mechanics:
//
//   - Popularity is rank-based Chung-Lu: the chance an edge lands on the
//     rank-r member falls off as (r+1)^-gamma, sampled by a closed-form
//     inverse CDF — no weight tables. Rank r is member id r globally and
//     member c + r*K inside community c, so low ids are the celebrities.
//   - Out-degrees are Pareto with mean = degree (xm = degree*(alpha-1)/alpha),
//     capped at maxDegree.
//   - Node i belongs to community i mod K (the same round-robin rule as
//     osn); an edge stays inside its source's community with probability
//     intra.
//   - Duplicate suppression is per source only (every edge out of i is
//     emitted during i's turn), which is what keeps memory bounded.
//     There is consequently no reciprocity pass — the graph is a
//     directed follows-style network; use osn when reciprocated
//     friendship edges matter.
type ldbcTopology struct{ cfg config }

func (t *ldbcTopology) Kind() string { return "ldbc" }
func (t *ldbcTopology) Nodes() int   { return t.cfg.nodes }
func (t *ldbcTopology) Seed() int64  { return t.cfg.seed }

// powerLawRank draws a rank in [0, m) with P(r) proportional to
// (r+1)^-gamma via the inverse of the continuous CDF — O(1) time and
// space for any m.
func powerLawRank(rng *rand.Rand, m int, oneMinusGamma float64) int {
	u := rng.Float64()
	t := math.Pow(1+u*(math.Pow(float64(m)+1, oneMinusGamma)-1), 1/oneMinusGamma)
	r := int(t) - 1
	if r < 0 {
		r = 0
	}
	if r >= m {
		r = m - 1
	}
	return r
}

func (t *ldbcTopology) Stream(emit func(Op) error) error {
	c := t.cfg
	rng := rand.New(rand.NewSource(c.seed))

	labels, cum, total := sortedWeightTable(c.labelWeights)
	pickLabel := func() string {
		x := rng.Float64() * total
		for i, w := range cum {
			if x < w {
				return labels[i]
			}
		}
		return labels[len(labels)-1]
	}

	for i := 0; i < c.nodes; i++ {
		var attrs graph.Attrs
		if c.withAttrs {
			attrs = graph.Attrs{
				"age":    graph.Int(13 + rng.Intn(68)),
				"city":   graph.String(cities[rng.Intn(len(cities))]),
				"gender": graph.String([]string{"female", "male"}[rng.Intn(2)]),
			}
		}
		if err := emit(Op{Kind: OpNode, Name: UserName(i), Attrs: attrs}); err != nil {
			return err
		}
	}

	k := c.communities
	xm := float64(c.degree) * (c.alpha - 1) / c.alpha
	oneMinusGamma := 1 - c.gamma
	type halfKey struct {
		to    graph.NodeID
		label string
	}
	seen := make(map[halfKey]struct{}, c.maxDegree)
	for i := 0; i < c.nodes; i++ {
		src := graph.NodeID(i)
		cm := i % k
		// Community cm holds members cm, cm+k, cm+2k, ...
		commSize := (c.nodes - cm + k - 1) / k
		outDeg := int(xm * math.Pow(1-rng.Float64(), -1/c.alpha))
		if outDeg < 1 {
			outDeg = 1
		}
		if outDeg > c.maxDegree {
			outDeg = c.maxDegree
		}
		for key := range seen {
			delete(seen, key)
		}
		for e := 0; e < outDeg; e++ {
			var dst graph.NodeID
			if rng.Float64() < c.intra {
				dst = graph.NodeID(cm + powerLawRank(rng, commSize, oneMinusGamma)*k)
			} else {
				dst = graph.NodeID(powerLawRank(rng, c.nodes, oneMinusGamma))
			}
			label := pickLabel()
			if dst == src {
				continue
			}
			hk := halfKey{dst, label}
			if _, dup := seen[hk]; dup {
				continue
			}
			seen[hk] = struct{}{}
			if err := emit(Op{Kind: OpEdge, From: src, To: dst, Label: label}); err != nil {
				return err
			}
		}
	}
	return nil
}
