// Package generate builds seeded synthetic social graphs for the
// evaluation the paper defers to future work (§5: "real and large
// representative synthetic datasets").
//
// # Topologies
//
// The core abstraction is [Topology]: a deterministic, seeded graph
// emitted as a stream of node ops followed by edge ops, so consumers can
// write or load million-node graphs without ever materializing them
// (cmd/gengraph streams to disk, reachac.Network.LoadTopology streams
// into chunked WAL commits). Construct one with [New] and functional
// options:
//
//	t, err := generate.New("ldbc",
//	    generate.WithNodes(1_000_000),
//	    generate.WithSeed(42),
//	    generate.WithCommunities(64),
//	    generate.WithDegree(8),
//	)
//
// Five families are available (see [Kinds]): "osn" (community-structured
// social graph with typed edges, reciprocity and attributes — the
// E-series experiments' generator), "ldbc" (LDBC-SNB-style power-law
// graph with Chung-Lu target sampling and Pareto out-degrees, the
// bounded-memory family for 1M+ nodes), and the classical "er", "ba" and
// "ws" random-graph families.
//
// Small graphs can be materialized with [Build] / [MustBuild]; [Count]
// and [Fingerprint] stream without materializing.
//
// # Options
//
// Options not consumed by a family are ignored; invalid combinations
// (e.g. WithAcyclic on "ldbc") are rejected by [New]. Zero or negative
// values fall back to per-kind defaults documented on each option.
//
// # Legacy surface
//
// The positional constructors ([OSN], [ErdosRenyi], [BarabasiAlbert],
// [WattsStrogatz]) remain as deprecated shims over New + Build and
// produce byte-identical graphs to the pre-streaming implementation for
// every seed.
package generate
