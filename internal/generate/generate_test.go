package generate

import (
	"testing"

	"reachac/internal/graph"
)

var testLabels = []string{"friend", "colleague", "parent"}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, testLabels, 1)
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("edges = %d, want 300", g.NumEdges())
	}
	if g.NumLabels() == 0 || g.NumLabels() > 3 {
		t.Fatalf("labels = %d", g.NumLabels())
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 120, testLabels, 7)
	b := ErdosRenyi(50, 120, testLabels, 7)
	same := true
	a.Edges(func(e graph.Edge) bool {
		if !b.HasEdge(e.From, e.To, a.LabelName(e.Label)) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("same seed produced different graphs")
	}
	c := ErdosRenyi(50, 120, testLabels, 8)
	diff := false
	a.Edges(func(e graph.Edge) bool {
		if !c.HasEdge(e.From, e.To, a.LabelName(e.Label)) {
			diff = true
			return false
		}
		return true
	})
	if !diff {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestBarabasiAlbertHubs(t *testing.T) {
	g := BarabasiAlbert(400, 3, testLabels, 3)
	if g.NumNodes() != 400 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 400 {
		t.Fatalf("edges = %d, too few", g.NumEdges())
	}
	// Preferential attachment must create a hub: some vertex with in-degree
	// well above the mean.
	maxIn, sumIn := 0, 0
	for i := 0; i < g.NumNodes(); i++ {
		d := g.InDegree(graph.NodeID(i))
		sumIn += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sumIn) / float64(g.NumNodes())
	if float64(maxIn) < 4*mean {
		t.Fatalf("no hub: max in-degree %d vs mean %.1f", maxIn, mean)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(120, 3, 0.1, testLabels, 5)
	if g.NumNodes() != 120 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Each vertex attempted k=3 out-edges; rewiring may self-collide, so
	// allow some loss but not much.
	if g.NumEdges() < 300 {
		t.Fatalf("edges = %d, want near 360", g.NumEdges())
	}
}

func TestOSNShape(t *testing.T) {
	g := OSN(OSNConfig{Nodes: 1000, Seed: 11, WithAttrs: true})
	if g.NumNodes() != 1000 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Average out-degree defaults to ~8 (plus reciprocated friend edges,
	// minus duplicate collisions).
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	if avg < 5 || avg > 14 {
		t.Fatalf("avg degree = %.1f, outside [5,14]", avg)
	}
	// The default label mix must include all four types.
	if g.NumLabels() != 4 {
		t.Fatalf("labels = %d, want 4", g.NumLabels())
	}
	// Attributes present.
	if _, ok := g.Attr(0, "age"); !ok {
		t.Fatal("attributes missing")
	}
}

func TestOSNDeterministic(t *testing.T) {
	a := OSN(OSNConfig{Nodes: 300, Seed: 2})
	b := OSN(OSNConfig{Nodes: 300, Seed: 2})
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	a.Edges(func(e graph.Edge) bool {
		if !b.HasEdge(e.From, e.To, a.LabelName(e.Label)) {
			t.Fatalf("edge %v missing in twin", e)
		}
		return true
	})
}

func TestOSNCommunityBias(t *testing.T) {
	cfg := OSNConfig{Nodes: 800, Communities: 8, IntraProb: 0.9, Seed: 9}
	g := OSN(cfg)
	intra, total := 0, 0
	g.Edges(func(e graph.Edge) bool {
		total++
		if int(e.From)%8 == int(e.To)%8 {
			intra++
		}
		return true
	})
	frac := float64(intra) / float64(total)
	if frac < 0.6 {
		t.Fatalf("intra-community fraction = %.2f, expected clustering", frac)
	}
}

func TestOSNFriendReciprocity(t *testing.T) {
	g := OSN(OSNConfig{Nodes: 500, Seed: 4, Reciprocity: 0.9})
	recip, friends := 0, 0
	g.Edges(func(e graph.Edge) bool {
		if g.LabelName(e.Label) != "friend" {
			return true
		}
		friends++
		if g.HasEdge(e.To, e.From, "friend") {
			recip++
		}
		return true
	})
	if friends == 0 {
		t.Fatal("no friend edges")
	}
	if float64(recip)/float64(friends) < 0.5 {
		t.Fatalf("reciprocity %.2f too low for 0.9 setting", float64(recip)/float64(friends))
	}
}

func TestOSNAcyclic(t *testing.T) {
	g := OSN(OSNConfig{Nodes: 600, Seed: 13, Acyclic: true})
	g.Edges(func(e graph.Edge) bool {
		if e.From <= e.To {
			t.Fatalf("edge %v violates acyclic orientation", e)
		}
		return true
	})
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

func TestOSNCustomLabels(t *testing.T) {
	g := OSN(OSNConfig{
		Nodes:        200,
		Seed:         6,
		LabelWeights: map[string]float64{"follows": 1.0},
	})
	if g.NumLabels() != 1 {
		t.Fatalf("labels = %v", g.Labels())
	}
}
