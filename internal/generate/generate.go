package generate

import (
	"fmt"

	"reachac/internal/graph"
)

// This file is the deprecation shim over the streaming Topology API (see
// doc.go, topology.go, options.go). The original package surface —
// positional-argument constructors returning a fully materialized
// *graph.Graph — is preserved verbatim for existing call sites; each
// constructor now builds the equivalent Topology and materializes it.
// The osn family reproduces the legacy draw sequence exactly, so shimmed
// output is byte-identical to pre-redesign output for every seed.

// UserName formats the i-th generated member's handle ("u000042") — the
// naming every generator in this package assigns in node-ID order, which
// drivers that address a server by name (cmd/acbench's HTTP mode) rely on
// to map node IDs back to members.
func UserName(i int) string { return fmt.Sprintf("u%06d", i) }

// ErdosRenyi returns a directed G(n, m) graph: m distinct directed edges
// drawn uniformly, each labeled uniformly from labels.
//
// Deprecated: use New("er", WithNodes(n), WithEdges(m), ...) and Build,
// or stream the Topology directly.
func ErdosRenyi(n, m int, labels []string, seed int64) *graph.Graph {
	return MustBuild(MustNew("er",
		WithNodes(n), WithEdges(m), WithLabels(labels...), WithSeed(seed)))
}

// BarabasiAlbert grows a preferential-attachment graph: each new vertex
// attaches k directed edges to existing vertices chosen proportionally to
// their current degree, each labeled uniformly from labels.
//
// Deprecated: use New("ba", WithNodes(n), WithDegree(k), ...) and Build,
// or stream the Topology directly.
func BarabasiAlbert(n, k int, labels []string, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	return MustBuild(MustNew("ba",
		WithNodes(n), WithDegree(k), WithLabels(labels...), WithSeed(seed)))
}

// WattsStrogatz builds a small-world ring lattice: each vertex connects to
// its k nearest clockwise neighbours, and each edge is rewired to a uniform
// target with probability beta.
//
// Deprecated: use New("ws", WithNodes(n), WithDegree(k), WithRewire(beta),
// ...) and Build, or stream the Topology directly.
func WattsStrogatz(n, k int, beta float64, labels []string, seed int64) *graph.Graph {
	return MustBuild(MustNew("ws",
		WithNodes(n), WithDegree(k), WithRewire(beta), WithLabels(labels...), WithSeed(seed)))
}

// OSNConfig parameterizes the community-structured social network
// generator.
//
// Deprecated: use New("osn", ...) with functional options instead.
type OSNConfig struct {
	// Nodes is the member count.
	Nodes int
	// Communities is the number of communities members are assigned to
	// round-robin (default: Nodes/500 + 4).
	Communities int
	// AvgOutDegree is the expected out-degree per member (default 8).
	AvgOutDegree int
	// IntraProb is the probability an edge stays inside the member's
	// community (default 0.8); community-local targets produce the high
	// clustering typical of OSNs.
	IntraProb float64
	// LabelWeights maps relationship types to sampling weights (default
	// friend 0.65, colleague 0.2, parent 0.05, follows 0.1).
	LabelWeights map[string]float64
	// Reciprocity is the probability a friend edge is reciprocated
	// (default 0.5).
	Reciprocity float64
	// WithAttrs adds age/city/gender attributes to every member.
	WithAttrs bool
	// Acyclic orients every edge from the higher member id to the lower
	// (a hierarchy / celebrity-follow shape), producing an acyclic graph
	// whose line graph is also acyclic. Reciprocity is ignored.
	Acyclic bool
	// Seed drives all randomness.
	Seed int64
}

// options translates the legacy config into the functional-options form;
// zero values pass through and New resolves the same defaults the legacy
// defaults() method did.
func (c OSNConfig) options() []Option {
	opts := []Option{
		WithNodes(c.Nodes), WithSeed(c.Seed),
		WithCommunities(c.Communities), WithDegree(c.AvgOutDegree),
		WithIntraProb(c.IntraProb), WithReciprocity(c.Reciprocity),
	}
	if len(c.LabelWeights) > 0 {
		opts = append(opts, WithLabelWeights(c.LabelWeights))
	}
	if c.WithAttrs {
		opts = append(opts, WithAttrs())
	}
	if c.Acyclic {
		opts = append(opts, WithAcyclic())
	}
	return opts
}

// OSN generates a community-structured social graph with typed edges.
// Edges are preferential inside each community (hubs emerge), uniform
// across communities.
//
// Deprecated: use New("osn", WithNodes(n), ...) and Build, or stream the
// Topology directly.
func OSN(cfg OSNConfig) *graph.Graph {
	return MustBuild(MustNew("osn", cfg.options()...))
}
