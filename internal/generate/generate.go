// Package generate builds seeded synthetic social graphs for the evaluation
// the paper defers to future work (§5: "real and large representative
// synthetic datasets"). Three classical random-graph families are provided
// (Erdős–Rényi, Barabási–Albert preferential attachment, Watts–Strogatz
// small world) plus an OSN generator with community structure, typed
// relationships and user attributes, which is what the E-series experiments
// use. All generators are deterministic for a given seed.
package generate

import (
	"fmt"
	"math/rand"

	"reachac/internal/graph"
)

// UserName formats the i-th generated member's handle ("u000042") — the
// naming every generator in this package assigns in node-ID order, which
// drivers that address a server by name (cmd/acbench's HTTP mode) rely on
// to map node IDs back to members.
func UserName(i int) string { return fmt.Sprintf("u%06d", i) }

// userName formats the i-th member's handle.
func userName(i int) string { return UserName(i) }

// addNodes inserts n members with no attributes.
func addNodes(g *graph.Graph, n int) {
	for i := 0; i < n; i++ {
		g.MustAddNode(userName(i), nil)
	}
}

// ErdosRenyi returns a directed G(n, m) graph: m distinct directed edges
// drawn uniformly, each labeled uniformly from labels.
func ErdosRenyi(n, m int, labels []string, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	addNodes(g, n)
	for added := 0; added < m; {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if _, err := g.AddEdge(u, v, labels[rng.Intn(len(labels))]); err == nil {
			added++
		}
	}
	return g
}

// BarabasiAlbert grows a preferential-attachment graph: each new vertex
// attaches k directed edges to existing vertices chosen proportionally to
// their current degree, each labeled uniformly from labels.
func BarabasiAlbert(n, k int, labels []string, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	addNodes(g, n)
	// targets repeats each vertex once per incident edge end, implementing
	// degree-proportional sampling.
	targets := []graph.NodeID{0}
	for v := 1; v < n; v++ {
		links := k
		if v < k {
			links = v
		}
		for e := 0; e < links; e++ {
			u := targets[rng.Intn(len(targets))]
			if u == graph.NodeID(v) {
				continue
			}
			if _, err := g.AddEdge(graph.NodeID(v), u, labels[rng.Intn(len(labels))]); err == nil {
				targets = append(targets, u)
			}
		}
		targets = append(targets, graph.NodeID(v))
	}
	return g
}

// WattsStrogatz builds a small-world ring lattice: each vertex connects to
// its k nearest clockwise neighbours, and each edge is rewired to a uniform
// target with probability beta.
func WattsStrogatz(n, k int, beta float64, labels []string, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	addNodes(g, n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			t := graph.NodeID((v + j) % n)
			if rng.Float64() < beta {
				t = graph.NodeID(rng.Intn(n))
			}
			if t == graph.NodeID(v) {
				continue
			}
			_, _ = g.AddEdge(graph.NodeID(v), t, labels[rng.Intn(len(labels))])
		}
	}
	return g
}

// OSNConfig parameterizes the community-structured social network
// generator.
type OSNConfig struct {
	// Nodes is the member count.
	Nodes int
	// Communities is the number of communities members are assigned to
	// round-robin (default: Nodes/500 + 4).
	Communities int
	// AvgOutDegree is the expected out-degree per member (default 8).
	AvgOutDegree int
	// IntraProb is the probability an edge stays inside the member's
	// community (default 0.8); community-local targets produce the high
	// clustering typical of OSNs.
	IntraProb float64
	// LabelWeights maps relationship types to sampling weights (default
	// friend 0.65, colleague 0.2, parent 0.05, follows 0.1).
	LabelWeights map[string]float64
	// Reciprocity is the probability a friend edge is reciprocated
	// (default 0.5).
	Reciprocity float64
	// WithAttrs adds age/city/gender attributes to every member.
	WithAttrs bool
	// Acyclic orients every edge from the higher member id to the lower
	// (a hierarchy / celebrity-follow shape), producing an acyclic graph
	// whose line graph is also acyclic. Reciprocity is ignored.
	Acyclic bool
	// Seed drives all randomness.
	Seed int64
}

func (c *OSNConfig) defaults() {
	if c.Communities <= 0 {
		c.Communities = c.Nodes/500 + 4
	}
	if c.AvgOutDegree <= 0 {
		c.AvgOutDegree = 8
	}
	if c.IntraProb <= 0 {
		c.IntraProb = 0.8
	}
	if len(c.LabelWeights) == 0 {
		c.LabelWeights = map[string]float64{
			"friend": 0.65, "colleague": 0.2, "parent": 0.05, "follows": 0.1,
		}
	}
	if c.Reciprocity <= 0 {
		c.Reciprocity = 0.5
	}
}

var cities = []string{"paris", "berlin", "tunis", "london", "rome", "madrid", "lyon", "oslo"}

// OSN generates a community-structured social graph with typed edges. Edges
// are preferential inside each community (hubs emerge), uniform across
// communities.
func OSN(cfg OSNConfig) *graph.Graph {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()

	// Stable label order for weighted sampling.
	labels := make([]string, 0, len(cfg.LabelWeights))
	for l := range cfg.LabelWeights {
		labels = append(labels, l)
	}
	sortStrings(labels)
	weights := make([]float64, len(labels))
	total := 0.0
	for i, l := range labels {
		total += cfg.LabelWeights[l]
		weights[i] = total
	}
	pickLabel := func() string {
		x := rng.Float64() * total
		for i, w := range weights {
			if x < w {
				return labels[i]
			}
		}
		return labels[len(labels)-1]
	}

	community := make([]int, cfg.Nodes)
	members := make([][]graph.NodeID, cfg.Communities)
	for i := 0; i < cfg.Nodes; i++ {
		c := i % cfg.Communities
		community[i] = c
		var attrs graph.Attrs
		if cfg.WithAttrs {
			attrs = graph.Attrs{
				"age":    graph.Int(13 + rng.Intn(68)),
				"city":   graph.String(cities[rng.Intn(len(cities))]),
				"gender": graph.String([]string{"female", "male"}[rng.Intn(2)]),
			}
		}
		id := g.MustAddNode(userName(i), attrs)
		members[c] = append(members[c], id)
	}

	// Per-community preferential target pools.
	pools := make([][]graph.NodeID, cfg.Communities)
	for c := range pools {
		pools[c] = append([]graph.NodeID(nil), members[c]...)
	}

	for i := 0; i < cfg.Nodes; i++ {
		src := graph.NodeID(i)
		c := community[i]
		for e := 0; e < cfg.AvgOutDegree; e++ {
			var dst graph.NodeID
			if rng.Float64() < cfg.IntraProb {
				dst = pools[c][rng.Intn(len(pools[c]))]
			} else {
				dst = graph.NodeID(rng.Intn(cfg.Nodes))
			}
			if dst == src {
				continue
			}
			from, to := src, dst
			if cfg.Acyclic && from < to {
				from, to = to, from
			}
			label := pickLabel()
			if _, err := g.AddEdge(from, to, label); err != nil {
				continue
			}
			pools[community[dst]] = append(pools[community[dst]], dst)
			if !cfg.Acyclic && label == "friend" && rng.Float64() < cfg.Reciprocity {
				_, _ = g.AddEdge(dst, src, label)
			}
		}
	}
	return g
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
