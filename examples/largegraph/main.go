// Largegraph exercises the library at the scale the paper targets: a 50k
// member synthetic social network, the cluster-based join index built over
// it, and a latency comparison of the three evaluators on the same policy
// checks.
package main

import (
	"fmt"
	"log"
	"time"

	"reachac"
	"reachac/internal/generate"
	"reachac/internal/workload"
)

func main() {
	const members = 50_000
	fmt.Printf("generating %d-member social network...\n", members)
	g := generate.OSN(generate.OSNConfig{
		Nodes:     members,
		Seed:      7,
		WithAttrs: true,
	})
	n := reachac.FromGraph(g)
	fmt.Printf("  %d members, %d relationships\n", n.NumUsers(), n.NumRelationships())

	// One policy: colleagues of friends, within 2 hops of friendship.
	owner, _ := n.UserID("u000100")
	if _, err := n.Share("u000100/timeline", owner, "friend+[1,2]/colleague+[1]"); err != nil {
		log.Fatal(err)
	}

	pairs := workload.HitPairs(g, 500, 3, 11)

	for _, kind := range []reachac.EngineKind{reachac.Online, reachac.Index} {
		start := time.Now()
		if err := n.UseEngine(kind); err != nil {
			log.Fatal(err)
		}
		build := time.Since(start)

		start = time.Now()
		allowed := 0
		for _, p := range pairs {
			d, err := n.CanAccess("u000100/timeline", p.Requester)
			if err != nil {
				log.Fatal(err)
			}
			if d.Effect == reachac.Allow {
				allowed++
			}
		}
		el := time.Since(start)
		fmt.Printf("%-12s build %-8v  %d checks in %v (%.1fµs/check, %d allowed)\n",
			kind, build.Round(time.Millisecond), len(pairs), el.Round(time.Millisecond),
			float64(el.Microseconds())/float64(len(pairs)), allowed)
	}

	// Deep query where the index's pruning pays off: transitive friendship
	// on a 10k-member follow-shaped (acyclic) network, where the line graph
	// keeps full SCC resolution.
	fmt.Println("\ntransitive-friend checks (friend+[1,*]), 200 random pairs, 10k follow graph:")
	g = generate.OSN(generate.OSNConfig{Nodes: 10_000, Seed: 7, WithAttrs: true, Acyclic: true})
	n = reachac.FromGraph(g)
	misses := workload.RandomPairs(g, 200, 13)
	for _, kind := range []reachac.EngineKind{reachac.Online, reachac.Index} {
		if err := n.UseEngine(kind); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		hits := 0
		for _, p := range misses {
			ok, err := n.CheckPath(p.Owner, p.Requester, "friend+[1,*]")
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				hits++
			}
		}
		el := time.Since(start)
		fmt.Printf("%-12s %d checks in %v (%.1fµs/check, %d reachable)\n",
			kind, len(misses), el.Round(time.Millisecond),
			float64(el.Microseconds())/float64(len(misses)), hits)
	}
}
