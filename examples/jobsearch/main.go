// Jobsearch models the paper's §1 motivation: employers screen candidates on
// social networks, so a candidate partitions their profile into fields with
// different audiences — public professional facts, party photos for close
// friends only, and political opinions for family. Attribute predicates
// restrict one audience further (only adult friends see the party photos).
package main

import (
	"fmt"
	"log"

	"reachac"
)

func main() {
	n := reachac.New()

	candidate := n.MustAddUser("nadia", reachac.StringAttr("status", "job-seeker"))

	// Nadia's circles.
	mother := n.MustAddUser("mother")
	brother := n.MustAddUser("brother")
	bestFriend := n.MustAddUser("lena", reachac.IntAttr("age", 27))
	youngFriend := n.MustAddUser("teo", reachac.IntAttr("age", 16))
	colleague := n.MustAddUser("omar")
	recruiter := n.MustAddUser("recruiter")
	stranger := n.MustAddUser("stranger")

	must(n.Relate(mother, candidate, "parent"))
	must(n.Relate(mother, brother, "parent"))
	must(n.RelateMutual(candidate, bestFriend, "friend"))
	must(n.RelateMutual(candidate, youngFriend, "friend"))
	must(n.RelateMutual(candidate, colleague, "colleague"))
	must(n.Relate(recruiter, candidate, "follows"))

	share := func(res string, paths ...string) {
		if _, err := n.Share(res, candidate, paths...); err != nil {
			log.Fatal(err)
		}
	}

	// Professional profile: colleagues, plus anyone who follows her
	// (recruiters included) — two alternative rules.
	share("nadia/cv", "colleague*[1]")
	if _, err := n.Share("nadia/cv", candidate, "follows-[1]"); err != nil {
		log.Fatal(err)
	}

	// Party photos: direct friends who are adults.
	share("nadia/party-photos", "friend+[1]{age>=18}")

	// Political opinions: family only — her parents and her siblings
	// (parent's children), expressed with direction switches.
	share("nadia/opinions", "parent-[1]")
	if _, err := n.Share("nadia/opinions", candidate, "parent-[1]/parent+[1]"); err != nil {
		log.Fatal(err)
	}

	users := []struct {
		name string
		id   reachac.UserID
	}{
		{"mother", mother}, {"brother", brother}, {"lena (27)", bestFriend},
		{"teo (16)", youngFriend}, {"omar (colleague)", colleague},
		{"recruiter", recruiter}, {"stranger", stranger},
	}
	resources := []string{"nadia/cv", "nadia/party-photos", "nadia/opinions"}

	fmt.Printf("%-18s", "")
	for _, r := range resources {
		fmt.Printf("  %-20s", r)
	}
	fmt.Println()
	for _, u := range users {
		fmt.Printf("%-18s", u.name)
		for _, r := range resources {
			d, err := n.CanAccess(r, u.id)
			if err != nil {
				log.Fatal(err)
			}
			cell := "·"
			if d.Effect == reachac.Allow {
				cell = "ALLOW"
			}
			fmt.Printf("  %-20s", cell)
		}
		fmt.Println()
	}

	fmt.Println("\nThe recruiter sees the CV but not the party photos or opinions —")
	fmt.Println("exactly the separation the paper's introduction calls for.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
