// Quickstart: the smallest complete use of the reachac public API — build a
// tiny social network, protect a resource with a reachability constraint,
// and check who gets in.
package main

import (
	"fmt"
	"log"

	"reachac"
)

func main() {
	n := reachac.New()

	alice := n.MustAddUser("alice", reachac.IntAttr("age", 24))
	bob := n.MustAddUser("bob")
	carol := n.MustAddUser("carol")
	dave := n.MustAddUser("dave")

	// alice -friend-> bob -friend-> carol;  dave is unrelated.
	must(n.Relate(alice, bob, "friend"))
	must(n.Relate(bob, carol, "friend"))

	// Share alice's photos with friends and friends-of-friends.
	if _, err := n.Share("alice/photos", alice, "friend+[1,2]"); err != nil {
		log.Fatal(err)
	}

	for _, u := range []reachac.UserID{alice, bob, carol, dave} {
		d, err := n.CanAccess("alice/photos", u)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s -> %-5s (%s)\n", n.UserName(u), d.Effect, d.Reason)
	}

	// Raw reachability checks work too, on any engine.
	must(n.UseEngine(reachac.Index))
	ok, err := n.CheckPath(alice, carol, "friend+[2]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalice reaches carol via friend+[2] (join index): %v\n", ok)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
