// Photosharing replays the paper's running example (§2, Figures 1–2) through
// the public API: the seven-member social network of Figure 1, Alice's
// privacy preferences expressed as reachability constraints, and the access
// decisions the paper walks through — including query Q1 ("the colleagues of
// my friends within 2 hops") and the §3.4 worked example ("the friends of my
// friends' parents", which grants George via Alice→Colin→Fred→George).
package main

import (
	"fmt"
	"log"

	"reachac"
)

var members = []string{"Alice", "Bill", "Colin", "David", "Elena", "Fred", "George"}

func main() {
	n := reachac.New()
	id := map[string]reachac.UserID{}
	for _, m := range members {
		id[m] = n.MustAddUser(m)
	}
	rel := func(a, b, t string) {
		if err := n.Relate(id[a], id[b], t); err != nil {
			log.Fatal(err)
		}
	}
	// Figure 1.
	rel("Alice", "Colin", "friend")
	rel("Alice", "David", "colleague")
	rel("Alice", "Bill", "friend")
	rel("Colin", "David", "friend")
	rel("Elena", "Bill", "friend")
	rel("Bill", "Elena", "friend")
	rel("Colin", "Fred", "parent")
	rel("David", "Fred", "colleague")
	rel("David", "George", "parent")
	rel("Elena", "David", "friend")
	rel("Elena", "George", "friend")
	rel("Fred", "George", "friend")

	// Alice's policies.
	share := func(res string, paths ...string) {
		if _, err := n.Share(res, id["Alice"], paths...); err != nil {
			log.Fatal(err)
		}
	}
	// Q1 (Figure 2): colleagues of Alice's friends within 2 hops.
	share("alice/holiday-album", "friend+[1,2]/colleague+[1]")
	// §3.4 worked example: friends of her friends' parents.
	share("alice/party-photos", "friend+[1]/parent+[1]/friend+[1]")
	// §2 intro flavor: 'only my friends and their friends'.
	share("alice/birthday-photos", "friend+[1,2]")

	// David shares his jokes with those who consider him a friend (§2).
	if _, err := n.Share("david/jokes", id["David"], "friend-[1]"); err != nil {
		log.Fatal(err)
	}

	// Use the paper's join index for enforcement.
	if err := n.UseEngine(reachac.Index); err != nil {
		log.Fatal(err)
	}

	for _, res := range []string{
		"alice/holiday-album", "alice/party-photos", "alice/birthday-photos", "david/jokes",
	} {
		fmt.Printf("%s:\n", res)
		for _, m := range members {
			d, err := n.CanAccess(res, id[m])
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if d.Effect == reachac.Allow {
				mark = "✓"
			}
			fmt.Printf("  %s %-7s %s\n", mark, m, d.Reason)
		}
		fmt.Println()
	}
}
