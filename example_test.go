package reachac_test

import (
	"fmt"

	"reachac"
)

// Example demonstrates the basic flow: build a network, protect a resource
// with a reachability constraint, and check access.
func Example() {
	n := reachac.New()
	alice := n.MustAddUser("alice")
	bob := n.MustAddUser("bob")
	carol := n.MustAddUser("carol")
	n.Relate(alice, bob, "friend")
	n.Relate(bob, carol, "friend")

	n.Share("alice/photos", alice, "friend+[1,2]")

	for _, u := range []reachac.UserID{bob, carol} {
		d, _ := n.CanAccess("alice/photos", u)
		fmt.Println(n.UserName(u), d.Effect)
	}
	// Output:
	// bob allow
	// carol allow
}

// ExampleNetwork_Share shows conjunctive conditions and alternative rules.
func ExampleNetwork_Share() {
	n := reachac.New()
	owner := n.MustAddUser("owner")
	friend := n.MustAddUser("friend")
	colleague := n.MustAddUser("colleague")
	n.Relate(owner, friend, "friend")
	n.Relate(owner, colleague, "colleague")

	// One rule whose two conditions must BOTH hold: nobody here satisfies
	// both a friend and a colleague relationship.
	n.Share("post", owner, "friend+[1]", "colleague+[1]")
	d, _ := n.CanAccess("post", friend)
	fmt.Println("conjunctive:", d.Effect)

	// A second Share adds an alternative audience.
	n.Share("post", owner, "friend+[1]")
	d, _ = n.CanAccess("post", friend)
	fmt.Println("alternative:", d.Effect)
	// Output:
	// conjunctive: deny
	// alternative: allow
}

// ExampleNetwork_CheckPath evaluates a raw reachability constraint with the
// paper's join index.
func ExampleNetwork_CheckPath() {
	n := reachac.New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	c := n.MustAddUser("c")
	n.Relate(a, b, "friend")
	n.Relate(b, c, "colleague")

	n.UseEngine(reachac.Index)
	ok, _ := n.CheckPath(a, c, "friend+[1]/colleague+[1]")
	fmt.Println(ok)
	// Output:
	// true
}

// ExampleNetwork_Audience materializes the full audience of a resource.
func ExampleNetwork_Audience() {
	n := reachac.New()
	owner := n.MustAddUser("owner")
	adult := n.MustAddUser("adult", reachac.IntAttr("age", 30))
	minor := n.MustAddUser("minor", reachac.IntAttr("age", 12))
	n.Relate(owner, adult, "friend")
	n.Relate(owner, minor, "friend")

	n.Share("party", owner, "friend+[1]{age>=18}")
	audience, _ := n.Audience("party")
	for _, id := range audience {
		fmt.Println(n.UserName(id))
	}
	// Output:
	// adult
}

// ExampleParsePath canonicalizes a path expression.
func ExampleParsePath() {
	s, _ := reachac.ParsePath("friend + [ 1 , 2 ] / colleague+[1]")
	fmt.Println(s)
	// Output:
	// friend+[1,2]/colleague+[1]
}
