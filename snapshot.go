package reachac

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/planner"
	"reachac/internal/search"
	"reachac/internal/tclosure"
)

// snapshot is one immutable engine generation: a private clone of the social
// graph, an evaluator built over it, a frozen policy view, and a decision
// cache. Once published via Network.snap it is never mutated (the cache is
// internally synchronized), so any number of readers may use it with no
// coordination while mutators prepare the next generation.
type snapshot struct {
	// g is a private clone of the master graph; nothing mutates it after
	// the snapshot is built, so evaluators may traverse it lock-free.
	g    *graph.Graph
	kind EngineKind
	// eval is the raw primary evaluator of the selected kind; delta advances
	// (core.IncrementalEvaluator) talk to it directly.
	eval Evaluator
	// reval is the evaluator reads run on: the planner's routed wrapper when
	// routing is enabled (see routedEval), otherwise eval itself.
	reval Evaluator
	// store is the frozen policy view (a Store clone); engine decides
	// against it, so concurrent Share/Revoke cannot change the rules a
	// reader observes mid-decision.
	store  *core.Store
	engine *core.Engine
	// aud caches audience sets over g, maintained incrementally across
	// delta advances (see search.AudienceCache). It is shared exactly as
	// far as g is: policy-only republications reuse it, a delta advance
	// carries it forward via Advance, and a full rebuild starts it fresh.
	aud *search.AudienceCache
	// version is the master graph's Version at clone time; src and gen
	// identify the live policy store and its Generation at clone time.
	// The snapshot is current exactly while all three still match.
	version uint64
	src     *core.Store
	gen     uint64
	// dcache memoizes decisions per (resource, requester) with per-delta
	// label-tagged invalidation (see planner.DecisionCache). Unlike its
	// drop-wholesale predecessor it survives graph mutations: a delta
	// advance carries it to the next snapshot, evicting only the entries
	// whose label tags intersect the delta. A policy change (different
	// store generation) starts a fresh cache, because the tags themselves
	// derive from the rules.
	dcache *planner.DecisionCache
	// refs counts in-flight readers of the snapshot's graph clone. It is a
	// pointer because a policy-only republication shares the previous
	// snapshot's clone — the counter must then be shared too, so that a
	// later steal of either snapshot's clone (see advanceSpareLocked)
	// observes every reader of that graph.
	refs *atomic.Int64
	// retired is set (under Network.mu) once the snapshot has been
	// replaced by a newer publication. A reader that acquires a retired
	// snapshot backs off and reloads; combined with the refs count this
	// lets the publisher prove a retired clone is unobserved before
	// advancing it in place.
	retired atomic.Bool
}

// acquire pins s for one read operation. It must be balanced by release.
// The increment-then-check ordering closes the classic hazard window: if
// the publisher observed refs == 0 after setting retired, any reader
// incrementing later is guaranteed to observe retired and back off
// (sequentially consistent atomics), so a clone is only ever advanced in
// place when provably unobserved.
func (s *snapshot) acquire() bool {
	s.refs.Add(1)
	if s.retired.Load() {
		s.refs.Add(-1)
		return false
	}
	return true
}

// release unpins the snapshot after a read operation.
func (s *snapshot) release() { s.refs.Add(-1) }

// current reports whether the snapshot still reflects the live network
// state. The graph version and policy generation are both read from atomic
// counters, so this check is lock-free.
func (s *snapshot) current(g *graph.Graph, store *core.Store) bool {
	return s.version == g.Version() && s.src == store && s.gen == store.Generation()
}

// decide answers one access request against the snapshot, serving repeats
// from the decision cache. Cached hits do not re-enter the audit trail. A
// surviving entry (carried across a delta advance) preserves the decision's
// Effect; its RuleID/Reason may name a different rule than a fresh
// evaluation would (see planner.DecisionCache).
func (s *snapshot) decide(res core.ResourceID, requester UserID) (Decision, error) {
	if d, ok := s.dcache.Get(res, requester); ok {
		return d, nil
	}
	d, err := s.engine.Decide(res, requester)
	if err != nil {
		return Decision{}, err
	}
	s.dcache.Put(res, requester, d)
	return d, nil
}

// labelsForStore builds the decision cache's tag resolver over one frozen
// policy view: the union of label names the resource's rules constrain on.
// An unregistered resource resolves to an empty tag, so its "unknown
// resource" denial is never evicted by graph deltas (registration is a
// policy change, which starts a fresh cache anyway).
func labelsForStore(view *core.Store) func(core.ResourceID) []string {
	return func(res core.ResourceID) []string {
		var labels []string
		for _, r := range view.RulesFor(res) {
			for _, c := range r.Conditions {
			steps:
				for _, st := range c.Path.Steps {
					for _, l := range labels {
						if l == st.Label {
							continue steps
						}
					}
					labels = append(labels, st.Label)
				}
			}
		}
		return labels
	}
}

// buildEvaluator constructs the evaluator of the given kind over g, which
// must not be mutated afterwards.
func buildEvaluator(kind EngineKind, g *graph.Graph) (Evaluator, error) {
	switch kind {
	case Online:
		return search.New(g), nil
	case OnlineDFS:
		return search.NewDFS(g), nil
	case OnlineAdaptive:
		return search.NewAdaptive(g), nil
	case Closure:
		return tclosure.New(g), nil
	case Index:
		idx, err := joinindex.Build(g, joinindex.Options{})
		if err != nil {
			return nil, fmt.Errorf("reachac: building index: %w", err)
		}
		return idx, nil
	case IndexPaperJoin:
		idx, err := joinindex.Build(g, joinindex.Options{Strategy: joinindex.EvalPaperJoin})
		if err != nil {
			return nil, fmt.Errorf("reachac: building index: %w", err)
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("reachac: unknown engine kind %d", int(kind))
	}
}

// snapshot returns the current engine snapshot pinned for one read
// operation (the caller must release it), publishing a fresh one if the
// graph or policies changed since the last publication. The fast path is
// two atomic loads, two atomic counter reads and one pin; only the first
// reader after a change pays for the republication.
func (n *Network) snapshot() (*snapshot, error) {
	for {
		s := n.snap.Load()
		if s == nil || !s.current(n.g, n.store.Load()) {
			break
		}
		if s.acquire() {
			return s, nil
		}
		// Retired under our feet: a newer snapshot is already published
		// (retirement happens only after the replacing Store), so the next
		// load observes it.
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	s, err := n.publishLocked()
	if err != nil {
		return nil, err
	}
	// Under mu a snapshot cannot retire, so this acquire never fails.
	s.acquire()
	return s, nil
}

// tombstone compaction thresholds: a full rebuild compacts the master's
// dead edges once at least compactMinDead of them make up over a fifth of
// the edge store, so long-lived networks stop cloning tombstones forever.
const compactMinDead = 64

// publishLocked builds and publishes a snapshot of the current master
// state. Callers must hold n.mu, which serializes it against mutators and
// concurrent publishers.
//
// Publication cost, cheapest first:
//
//  1. policy-only change — the previous snapshot's graph clone and
//     evaluator are reused (shared); only the policy view and decision
//     cache are refreshed;
//  2. delta advance — the retired spare snapshot's clone, once provably
//     unobserved, is fast-forwarded by replaying the master's delta log
//     (O(Δ)), and its evaluator advances in place when it implements
//     core.IncrementalEvaluator;
//  3. full rebuild — O(V+E) clone plus evaluator construction, the
//     pre-delta behavior and the fallback whenever the spare is still
//     referenced, the delta window was trimmed, or the evaluator declines
//     the batch.
func (n *Network) publishLocked() (*snapshot, error) {
	// Reassess the engine choice first. The recommendation is always
	// computed (it surfaces through Stats as observability); with
	// auto-migration enabled it also changes n.kind before the tier checks
	// below, so the migration rides the publication that observed it.
	if n.route {
		reads := n.ctr.checks.Load() + n.ctr.audiences.Load()
		muts := n.ctr.mutations.Load()
		if rec, ok := n.planner.Recommend(planner.Kind(n.kind), reads, muts); ok && n.autoMigrate {
			n.kind = EngineKind(rec)
			n.planner.Migrated(rec)
		}
	}
	store := n.store.Load()
	cur := n.snap.Load()
	if cur == nil || cur.version != n.g.Version() {
		// The graph changed, so every path republishes its clone anyway;
		// compact the master's tombstones first if they piled up (logged
		// as a delta, so a spare advance compacts its clone at the same
		// point in history).
		if dead := n.g.NumTombstones(); dead >= compactMinDead && dead*4 >= n.g.NumEdges() {
			n.g.CompactTombstones()
		}
	}
	// Read both counters before cloning: a mutation racing the clone then
	// at worst marks the new snapshot already stale (forcing one extra
	// rebuild), never lets it linger as current with missing state.
	gv, gen := n.g.Version(), store.Generation()
	if cur != nil && cur.version == gv && cur.src == store && cur.gen == gen && cur.kind == n.kind {
		return cur, nil
	}
	var (
		gc   *graph.Graph
		eval Evaluator
		aud  *search.AudienceCache
		dc   *planner.DecisionCache
		refs *atomic.Int64
	)
	if cur != nil && cur.version == gv && cur.kind == n.kind {
		// Policy-only change: share the clone, evaluator, audience cache
		// and reader count. The decision cache starts fresh — its label
		// tags derive from the rules that just changed.
		gc, eval, aud, refs = cur.g, cur.eval, cur.aud, cur.refs
	} else if agc, aeval, aaud, adc := n.advanceSpareLocked(cur, store, gen); agc != nil {
		gc, eval, aud, dc = agc, aeval, aaud, adc
	}
	if gc == nil {
		gc = n.g.Clone()
		// Private clones never serve ChangesSince (the master's log drives
		// every advance), so don't let delta replays accumulate in them.
		gc.SetDeltaLogLimit(-1)
		// Build the CSR adjacency eagerly: the full-rebuild path already
		// pays O(V+E), and a fresh CSR makes every query on the snapshot
		// run the dense read path from the first call.
		gc.CSR()
		var err error
		eval, err = buildEvaluator(n.kind, gc)
		if err != nil {
			return nil, err
		}
		aud = search.NewAudienceCache(gc)
	}
	if refs == nil {
		refs = new(atomic.Int64)
	}
	view := store.Clone()
	if dc == nil {
		dc = planner.NewDecisionCache(labelsForStore(view), n.planner.CacheCounters())
	}
	// The routed wrapper is rebuilt per publication (it is a tiny struct):
	// the primary evaluator or audience cache underneath may have changed.
	reval := eval
	if n.route {
		reval = &routedEval{
			pl:      n.planner,
			primary: eval,
			online:  aud.Engine(),
			aud:     aud,
			kind:    planner.Kind(n.kind),
		}
	}
	s := &snapshot{
		g:       gc,
		kind:    n.kind,
		eval:    eval,
		reval:   reval,
		aud:     aud,
		store:   view,
		engine:  core.NewEngineWithLog(view, reval, n.audit),
		dcache:  dc,
		version: gv,
		src:     store,
		gen:     gen,
		refs:    refs,
	}
	n.ctr.republications.Add(1)
	old := n.snap.Swap(s)
	if old != nil && old != s {
		old.retired.Store(true)
		if old.g != s.g {
			// The outgoing snapshot's clone is not the one just published,
			// so once its readers drain it becomes the next advance
			// candidate. (After a policy-only share the clones are equal
			// and the older spare, if any, stays on deck instead.)
			n.spare = old
		}
	}
	return s, nil
}

// advanceSpareLocked tries to satisfy a publication by fast-forwarding the
// retired spare snapshot's private clone to the master's current version —
// replaying the bounded delta log at O(Δ) instead of paying the O(V+E)
// re-clone — and advancing its evaluator, audience cache and decision cache
// in place when possible. store and gen identify the policy state being
// published: the decision cache is carried forward only when the spare was
// built against the same policy generation (its label tags derive from the
// rules). It returns nils when no spare is stealable: none exists, readers
// still hold it, or the delta window has been trimmed past its version.
// Callers must hold n.mu.
func (n *Network) advanceSpareLocked(cur *snapshot, store *core.Store, gen uint64) (*graph.Graph, Evaluator, *search.AudienceCache, *planner.DecisionCache) {
	spare := n.spare
	if spare == nil {
		return nil, nil, nil, nil
	}
	if cur != nil && cur.g == spare.g {
		// Defensive: never advance a clone the published snapshot shares.
		n.spare = nil
		return nil, nil, nil, nil
	}
	if spare.refs.Load() != 0 {
		// A reader still traverses the clone; keep the spare for a later
		// publication and fall back to a full rebuild now.
		return nil, nil, nil, nil
	}
	deltas, ok := n.g.ChangesSince(spare.version)
	if !ok {
		// The window no longer reaches back; the spare can only fall
		// further behind, so drop it.
		n.spare = nil
		return nil, nil, nil, nil
	}
	// The spare is consumed either way: on any failure below its clone is
	// partially advanced and must never be reused.
	n.spare = nil
	gc := spare.g
	for _, d := range deltas {
		if err := gc.Apply(d); err != nil {
			return nil, nil, nil, nil
		}
	}
	// The clone is fully advanced, so the caches can follow it
	// incrementally; the spare being unobserved guarantees the quiescence
	// Advance requires.
	aud := spare.aud
	if aud == nil {
		aud = search.NewAudienceCache(gc)
	} else {
		aud.Advance(deltas)
	}
	// Carry the warm decision cache iff the policy is unchanged since the
	// spare was built: Advance evicts exactly the entries the delta batch
	// could have flipped, so everything else keeps serving.
	var dc *planner.DecisionCache
	if spare.dcache != nil && spare.src == store && spare.gen == gen {
		dc = spare.dcache
		dc.Advance(deltas)
	}
	if spare.kind == n.kind {
		if inc, isInc := spare.eval.(core.IncrementalEvaluator); isInc && inc.ApplyDelta(gc, deltas) {
			return gc, spare.eval, aud, dc
		}
	}
	// Evaluator declined (or the engine kind changed): the advanced clone
	// is still sound, rebuild only the evaluator over it.
	eval, err := buildEvaluator(n.kind, gc)
	if err != nil {
		return nil, nil, nil, nil
	}
	return gc, eval, aud, dc
}

// CanAccessAll decides access to one resource for many requesters in a
// single call, fanning the checks out across a worker pool. All decisions
// are made against one engine snapshot, so the result is a consistent view
// even if mutations land mid-batch. The returned slice is index-aligned
// with requesters. On any evaluation error the batch is abandoned and the
// first error is returned.
func (n *Network) CanAccessAll(resource string, requesters []UserID) ([]Decision, error) {
	s, err := n.snapshot()
	if err != nil {
		return nil, err
	}
	defer s.release()
	n.ctr.batchChecks.Add(1)
	n.ctr.checks.Add(uint64(len(requesters)))
	return s.decideAll(core.ResourceID(resource), requesters)
}

// decideAll is CanAccessAll's body over an already-pinned snapshot, shared
// with View.CanAccessAll.
func (s *snapshot) decideAll(res core.ResourceID, requesters []UserID) ([]Decision, error) {
	var err error
	out := make([]Decision, len(requesters))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(requesters) {
		workers = len(requesters)
	}
	if workers <= 1 {
		for i, r := range requesters {
			if out[i], err = s.decide(res, r); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(requesters) {
					return
				}
				d, derr := s.decide(res, requesters[i])
				if derr != nil {
					errOnce.Do(func() { err = derr })
					failed.Store(true)
					return
				}
				out[i] = d
			}
		}()
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return out, nil
}
