package reachac

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/search"
	"reachac/internal/tclosure"
)

// snapshot is one immutable engine generation: a private clone of the social
// graph, an evaluator built over it, a frozen policy view, and a decision
// cache. Once published via Network.snap it is never mutated (the cache is
// internally synchronized), so any number of readers may use it with no
// coordination while mutators prepare the next generation.
type snapshot struct {
	// g is a private clone of the master graph; nothing mutates it after
	// the snapshot is built, so evaluators may traverse it lock-free.
	g    *graph.Graph
	kind EngineKind
	eval Evaluator
	// store is the frozen policy view (a Store clone); engine decides
	// against it, so concurrent Share/Revoke cannot change the rules a
	// reader observes mid-decision.
	store  *core.Store
	engine *core.Engine
	// version is the master graph's Version at clone time; src and gen
	// identify the live policy store and its Generation at clone time.
	// The snapshot is current exactly while all three still match.
	version uint64
	src     *core.Store
	gen     uint64
	// cache memoizes decisions per (resource, requester). It lives and
	// dies with the snapshot: any graph or policy change publishes a new
	// snapshot with an empty cache, so no fine-grained invalidation is
	// ever needed. cacheLen bounds it (see maxCachedDecisions) so a
	// long-lived snapshot on a quiescent network cannot grow without
	// limit.
	cache    sync.Map
	cacheLen atomic.Int64
}

// maxCachedDecisions caps one snapshot's decision cache. Entries beyond the
// cap are decided but not memoized; the cap is generous because an entry is
// small and the cache empties at every graph or policy change.
const maxCachedDecisions = 1 << 20

// decisionKey identifies one cached access decision.
type decisionKey struct {
	res core.ResourceID
	req UserID
}

// current reports whether the snapshot still reflects the live network
// state. The graph version and policy generation are both read from atomic
// counters, so this check is lock-free.
func (s *snapshot) current(g *graph.Graph, store *core.Store) bool {
	return s.version == g.Version() && s.src == store && s.gen == store.Generation()
}

// decide answers one access request against the snapshot, serving repeats
// from the decision cache. Cached hits do not re-enter the audit trail.
func (s *snapshot) decide(res core.ResourceID, requester UserID) (Decision, error) {
	k := decisionKey{res, requester}
	if v, ok := s.cache.Load(k); ok {
		return v.(Decision), nil
	}
	d, err := s.engine.Decide(res, requester)
	if err != nil {
		return Decision{}, err
	}
	if s.cacheLen.Load() < maxCachedDecisions {
		if _, loaded := s.cache.LoadOrStore(k, d); !loaded {
			s.cacheLen.Add(1)
		}
	}
	return d, nil
}

// buildEvaluator constructs the evaluator of the given kind over g, which
// must not be mutated afterwards.
func buildEvaluator(kind EngineKind, g *graph.Graph) (Evaluator, error) {
	switch kind {
	case Online:
		return search.New(g), nil
	case OnlineDFS:
		return search.NewDFS(g), nil
	case OnlineAdaptive:
		return search.NewAdaptive(g), nil
	case Closure:
		return tclosure.New(g), nil
	case Index:
		idx, err := joinindex.Build(g, joinindex.Options{})
		if err != nil {
			return nil, fmt.Errorf("reachac: building index: %w", err)
		}
		return idx, nil
	case IndexPaperJoin:
		idx, err := joinindex.Build(g, joinindex.Options{Strategy: joinindex.EvalPaperJoin})
		if err != nil {
			return nil, fmt.Errorf("reachac: building index: %w", err)
		}
		return idx, nil
	default:
		return nil, fmt.Errorf("reachac: unknown engine kind %d", int(kind))
	}
}

// snapshot returns the current engine snapshot, publishing a fresh one if
// the graph or policies changed since the last publication. The fast path
// is two atomic loads and two atomic counter reads; only the first reader
// after a change pays for the rebuild.
func (n *Network) snapshot() (*snapshot, error) {
	if s := n.snap.Load(); s != nil && s.current(n.g, n.store.Load()) {
		return s, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.publishLocked()
}

// publishLocked builds and publishes a snapshot of the current master
// state. Callers must hold n.mu, which serializes it against mutators and
// concurrent publishers. A policy-only change reuses the previous
// snapshot's graph clone and evaluator; only the policy view and decision
// cache are refreshed.
func (n *Network) publishLocked() (*snapshot, error) {
	store := n.store.Load()
	// Read both counters before cloning: a mutation racing the clone then
	// at worst marks the new snapshot already stale (forcing one extra
	// rebuild), never lets it linger as current with missing state.
	gv, gen := n.g.Version(), store.Generation()
	cur := n.snap.Load()
	if cur != nil && cur.version == gv && cur.src == store && cur.gen == gen && cur.kind == n.kind {
		return cur, nil
	}
	var gc *graph.Graph
	var eval Evaluator
	if cur != nil && cur.version == gv && cur.kind == n.kind {
		gc, eval = cur.g, cur.eval
	} else {
		gc = n.g.Clone()
		var err error
		eval, err = buildEvaluator(n.kind, gc)
		if err != nil {
			return nil, err
		}
	}
	view := store.Clone()
	s := &snapshot{
		g:       gc,
		kind:    n.kind,
		eval:    eval,
		store:   view,
		engine:  core.NewEngineWithLog(view, eval, n.audit),
		version: gv,
		src:     store,
		gen:     gen,
	}
	n.snap.Store(s)
	return s, nil
}

// CanAccessAll decides access to one resource for many requesters in a
// single call, fanning the checks out across a worker pool. All decisions
// are made against one engine snapshot, so the result is a consistent view
// even if mutations land mid-batch. The returned slice is index-aligned
// with requesters. On any evaluation error the batch is abandoned and the
// first error is returned.
func (n *Network) CanAccessAll(resource string, requesters []UserID) ([]Decision, error) {
	s, err := n.snapshot()
	if err != nil {
		return nil, err
	}
	res := core.ResourceID(resource)
	out := make([]Decision, len(requesters))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(requesters) {
		workers = len(requesters)
	}
	if workers <= 1 {
		for i, r := range requesters {
			if out[i], err = s.decide(res, r); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(requesters) {
					return
				}
				d, derr := s.decide(res, requesters[i])
				if derr != nil {
					errOnce.Do(func() { err = derr })
					failed.Store(true)
					return
				}
				out[i] = d
			}
		}()
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return out, nil
}
