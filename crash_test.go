package reachac

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/wal"
)

// ---------------------------------------------------------------------------
// Deterministic trace generation
//
// A trace is a sequence of steps; each step is ONE commit — a single mutator
// call or a small Batch — so step i corresponds 1:1 to WAL record group i.
// The generator tracks its own model of the network so every generated step
// applies cleanly, and the same seed always yields the same trace; the
// crash tests rely on both properties to rebuild reference networks that
// replay exactly the surviving prefix.
// ---------------------------------------------------------------------------

type traceAction struct {
	kind                string // add-user, relate, unrelate, share, revoke
	user                string
	from, to, label     string
	resource, ruleOwner string
	paths               []string
	ruleRes, ruleID     string
}

// traceStep is one commit: a batch of 1..3 actions.
type traceStep struct {
	actions []traceAction
}

type traceModel struct {
	rng       *rand.Rand
	users     []string
	edges     map[string]bool // "from|label|to"
	resources map[string]string
	rules     []struct{ res, id string }
	nextUser  int
	nextRes   int
	nextRule  int
}

var traceLabels = []string{"friend", "colleague", "family"}

var tracePaths = []string{
	"friend+[1,1]",
	"friend+[1,2]",
	"colleague+[1,1]",
	"friend+[1,1]/colleague+[1,1]",
	"family+[1,2]",
}

func newTraceModel(seed int64) *traceModel {
	return &traceModel{
		rng:       rand.New(rand.NewSource(seed)),
		edges:     make(map[string]bool),
		resources: make(map[string]string),
	}
}

// next generates one step (1..3 actions, mostly 1) that is guaranteed to
// apply cleanly on any network that has replayed the preceding steps.
func (m *traceModel) next() traceStep {
	var step traceStep
	count := 1
	if m.rng.Intn(5) == 0 {
		count = 2 + m.rng.Intn(2)
	}
	for i := 0; i < count; i++ {
		step.actions = append(step.actions, m.nextAction())
	}
	return step
}

func (m *traceModel) nextAction() traceAction {
	for {
		switch m.rng.Intn(10) {
		case 0, 1, 2: // add-user
			name := fmt.Sprintf("u%04d", m.nextUser)
			m.nextUser++
			m.users = append(m.users, name)
			return traceAction{kind: "add-user", user: name}
		case 3, 4, 5, 6: // relate
			if len(m.users) < 2 {
				continue
			}
			for try := 0; try < 10; try++ {
				from := m.users[m.rng.Intn(len(m.users))]
				to := m.users[m.rng.Intn(len(m.users))]
				label := traceLabels[m.rng.Intn(len(traceLabels))]
				key := from + "|" + label + "|" + to
				if from == to || m.edges[key] {
					continue
				}
				m.edges[key] = true
				return traceAction{kind: "relate", from: from, to: to, label: label}
			}
			continue
		case 7: // unrelate
			if len(m.edges) == 0 {
				continue
			}
			keys := make([]string, 0, len(m.edges))
			for k := range m.edges {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			key := keys[m.rng.Intn(len(keys))]
			delete(m.edges, key)
			parts := strings.SplitN(key, "|", 3)
			return traceAction{kind: "unrelate", from: parts[0], to: parts[2], label: parts[1]}
		case 8: // share
			if len(m.users) == 0 {
				continue
			}
			// Reuse an existing resource (same owner) half the time.
			var res, owner string
			if len(m.resources) > 0 && m.rng.Intn(2) == 0 {
				names := make([]string, 0, len(m.resources))
				for r := range m.resources {
					names = append(names, r)
				}
				sort.Strings(names)
				res = names[m.rng.Intn(len(names))]
				owner = m.resources[res]
			} else {
				res = fmt.Sprintf("res%03d", m.nextRes)
				m.nextRes++
				owner = m.users[m.rng.Intn(len(m.users))]
				m.resources[res] = owner
			}
			m.nextRule++
			id := fmt.Sprintf("rule-%d", m.nextRule)
			m.rules = append(m.rules, struct{ res, id string }{res, id})
			paths := []string{tracePaths[m.rng.Intn(len(tracePaths))]}
			if m.rng.Intn(4) == 0 {
				paths = append(paths, tracePaths[m.rng.Intn(len(tracePaths))])
			}
			return traceAction{kind: "share", resource: res, ruleOwner: owner, paths: paths}
		default: // revoke
			if len(m.rules) == 0 {
				continue
			}
			i := m.rng.Intn(len(m.rules))
			r := m.rules[i]
			m.rules = append(m.rules[:i], m.rules[i+1:]...)
			return traceAction{kind: "revoke", ruleRes: r.res, ruleID: r.id}
		}
	}
}

// makeTrace generates steps steps from seed.
func makeTrace(seed int64, steps int) []traceStep {
	m := newTraceModel(seed)
	out := make([]traceStep, steps)
	for i := range out {
		out[i] = m.next()
	}
	return out
}

// applyStep commits one step to a network as a single batch. The generator
// guarantees every action applies cleanly; any error is a test failure.
func applyStep(n *Network, step traceStep) error {
	return n.Batch(func(tx *Tx) error {
		for _, a := range step.actions {
			if err := applyAction(tx, a); err != nil {
				return fmt.Errorf("%s: %w", a.kind, err)
			}
		}
		return nil
	})
}

func applyAction(tx *Tx, a traceAction) error {
	lookup := func(name string) (UserID, error) {
		id, ok := tx.n.g.NodeByName(name)
		if !ok {
			return 0, fmt.Errorf("unknown user %q", name)
		}
		return id, nil
	}
	switch a.kind {
	case "add-user":
		_, err := tx.AddUser(a.user)
		return err
	case "relate":
		from, err := lookup(a.from)
		if err != nil {
			return err
		}
		to, err := lookup(a.to)
		if err != nil {
			return err
		}
		return tx.Relate(from, to, a.label)
	case "unrelate":
		from, err := lookup(a.from)
		if err != nil {
			return err
		}
		to, err := lookup(a.to)
		if err != nil {
			return err
		}
		return tx.Unrelate(from, to, a.label)
	case "share":
		owner, err := lookup(a.ruleOwner)
		if err != nil {
			return err
		}
		_, err = tx.Share(a.resource, owner, a.paths...)
		return err
	case "revoke":
		if !tx.Revoke(a.ruleRes, a.ruleID) {
			return fmt.Errorf("rule %s/%s absent", a.ruleRes, a.ruleID)
		}
		return nil
	default:
		return fmt.Errorf("unknown action %q", a.kind)
	}
}

// replayPrefix builds a fresh in-memory network holding the first n steps.
func replayPrefix(t *testing.T, trace []traceStep, n int) *Network {
	t.Helper()
	ref := New()
	for i := 0; i < n; i++ {
		if err := applyStep(ref, trace[i]); err != nil {
			t.Fatalf("reference replay step %d: %v", i, err)
		}
	}
	return ref
}

// stateSignature canonically dumps a network's structural + policy state:
// users, live edges (by endpoint names and label), resources and rule IDs.
// Two networks with equal signatures hold the same logical state and must
// produce equal decisions.
func stateSignature(n *Network) string {
	var b strings.Builder
	g := n.Graph()
	for _, name := range g.SortedNodeNames() {
		b.WriteString("u:" + name + "\n")
	}
	var edges []string
	g.Edges(func(e graph.Edge) bool {
		edges = append(edges, g.EdgeString(e))
		return true
	})
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString("e:" + e + "\n")
	}
	b.WriteString("p:" + policyShape(n) + "\n")
	return b.String()
}

// allEngineKinds is every evaluator the facade offers.
var allEngineKinds = []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin}

// assertSameDecisions asserts got and want agree on (resource, requester)
// decisions under each of the given engine kinds, and on the basic
// structural counters. Small networks are checked exhaustively; large ones
// are stride-sampled (deterministically) to keep the cross product of
// engines × resources × requesters bounded.
func assertSameDecisions(t *testing.T, label string, got, want *Network, kinds []EngineKind) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumRelationships() != want.NumRelationships() {
		t.Fatalf("%s: structure (%d users, %d rels) vs reference (%d users, %d rels)",
			label, got.NumUsers(), got.NumRelationships(), want.NumUsers(), want.NumRelationships())
	}
	gotRes, wantRes := got.Store().Resources(), want.Store().Resources()
	if fmt.Sprint(gotRes) != fmt.Sprint(wantRes) {
		t.Fatalf("%s: resources %v vs reference %v", label, gotRes, wantRes)
	}
	checkRes := sampleResources(wantRes, 20)
	requesters := sampleUsers(want.NumUsers(), 30)
	for _, kind := range kinds {
		if err := got.UseEngine(kind); err != nil {
			t.Fatalf("%s: recovered UseEngine(%v): %v", label, kind, err)
		}
		if err := want.UseEngine(kind); err != nil {
			t.Fatalf("%s: reference UseEngine(%v): %v", label, kind, err)
		}
		for _, res := range checkRes {
			for _, u := range requesters {
				dg, err := got.CanAccess(string(res), UserID(u))
				if err != nil {
					t.Fatalf("%s/%v: recovered CanAccess(%s,%d): %v", label, kind, res, u, err)
				}
				dw, err := want.CanAccess(string(res), UserID(u))
				if err != nil {
					t.Fatalf("%s/%v: reference CanAccess(%s,%d): %v", label, kind, res, u, err)
				}
				if dg.Effect != dw.Effect || dg.RuleID != dw.RuleID {
					t.Fatalf("%s/%v: CanAccess(%s,%d) = (%v,%q), reference (%v,%q)",
						label, kind, res, u, dg.Effect, dg.RuleID, dw.Effect, dw.RuleID)
				}
			}
		}
	}
}

// sampleResources returns all resources when few, else an even stride
// sample of max of them (always including the first and last).
func sampleResources(rs []core.ResourceID, max int) []core.ResourceID {
	if len(rs) <= max {
		return rs
	}
	out := make([]core.ResourceID, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, rs[i*(len(rs)-1)/(max-1)])
	}
	return out
}

// sampleUsers returns user IDs 0..n-1 when few, else an even stride sample.
func sampleUsers(n, max int) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, i*(n-1)/(max-1))
	}
	return out
}

// ---------------------------------------------------------------------------
// Crash-consistency differential: truncate the WAL at every record boundary
// (and at assorted byte offsets inside records) and assert the recovered
// network's decisions equal an in-memory network replaying the surviving
// step prefix, across all six engine kinds.
// ---------------------------------------------------------------------------

func TestCrashConsistencyTruncation(t *testing.T) {
	const seed, steps = 7, 26
	trace := makeTrace(seed, steps)

	dir := t.TempDir()
	n, err := Open(dir, WithSync(SyncNever), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	for i, step := range trace {
		if err := applyStep(n, step); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "wal-00000001.log")
	offs, err := wal.RecordOffsets(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != steps {
		t.Fatalf("log holds %d records, want %d (1 per step)", len(offs), steps)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	recoverAt := func(t *testing.T, cut int64, wantSteps int, wantTorn bool) {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "wal-00000001.log"), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n2, err := Open(dir2)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		defer n2.Close()
		rec := n2.Recovery()
		if rec.Groups != wantSteps {
			t.Fatalf("cut %d: recovered %d steps, want %d", cut, rec.Groups, wantSteps)
		}
		if rec.TornTail != wantTorn {
			t.Fatalf("cut %d: torn = %v, want %v", cut, rec.TornTail, wantTorn)
		}
		ref := replayPrefix(t, trace, wantSteps)
		assertSameDecisions(t, fmt.Sprintf("cut@%d", cut), n2, ref, allEngineKinds)
	}

	// Every record boundary, torn-free.
	boundaries := append([]int64{0}, offs...)
	for i, cut := range boundaries {
		t.Run(fmt.Sprintf("boundary-%02d", i), func(t *testing.T) {
			recoverAt(t, cut, i, false)
		})
	}
	// Byte-level cuts inside records: the partial record is dropped.
	byteCuts := []struct {
		cut       int64
		wantSteps int
	}{
		{boundaries[1] - 1, 0},               // inside first record's payload
		{boundaries[1] + 3, 1},               // inside second record's header
		{boundaries[steps/2] + 9, steps / 2}, // just past a mid-log header
		{offs[steps-1] - 1, steps - 1},       // one byte short of a clean log
	}
	for _, bc := range byteCuts {
		t.Run(fmt.Sprintf("mid-record-%d", bc.cut), func(t *testing.T) {
			recoverAt(t, bc.cut, bc.wantSteps, true)
		})
	}
}

// ---------------------------------------------------------------------------
// Kill-the-process tests: a child process runs the deterministic workload
// against a real durable network and is SIGKILLed mid-write; the parent then
// recovers the directory and checks the acknowledged-prefix guarantee.
// ---------------------------------------------------------------------------

const (
	crashChildEnv = "REACHAC_CRASH_CHILD_DIR"
	crashCkptEnv  = "REACHAC_CRASH_CHILD_CKPT"
	crashSeed     = 4242
	crashMaxSteps = 4000
)

// TestCrashChildWorkload is the child half of the kill tests: when the env
// var is set it applies the deterministic trace to a durable network rooted
// there, appending one ack byte (fsynced) per acknowledged step, until the
// parent kills it. It is a no-op under normal `go test` runs.
func TestCrashChildWorkload(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash child: run by the kill tests")
	}
	opts := []Option{WithSync(SyncAlways)}
	if os.Getenv(crashCkptEnv) != "" {
		opts = append(opts, WithCheckpointEvery(4096))
	} else {
		opts = append(opts, WithCheckpointEvery(0))
	}
	n, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("child open: %v", err)
	}
	acks, err := os.OpenFile(filepath.Join(dir, "acks"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("child acks: %v", err)
	}
	trace := makeTrace(crashSeed, crashMaxSteps)
	for i, step := range trace {
		if err := applyStep(n, step); err != nil {
			t.Fatalf("child step %d: %v", i, err)
		}
		// The mutation is acknowledged (WAL-fsynced); record the ack
		// durably too, so the parent can lower-bound the durable prefix.
		if _, err := acks.Write([]byte{1}); err != nil {
			t.Fatalf("child ack write: %v", err)
		}
		if err := acks.Sync(); err != nil {
			t.Fatalf("child ack sync: %v", err)
		}
	}
	// Ran to completion before the kill landed: that's fine, the parent
	// handles a cleanly-exited child.
	n.Close()
}

// runCrashChild spawns this test binary as the crash child against dir,
// kills it after delay, and returns the durable ack count.
func runCrashChild(t *testing.T, dir string, ckpt bool, delay time.Duration) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildWorkload$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	if ckpt {
		cmd.Env = append(cmd.Env, crashCkptEnv+"=1")
	}
	out := &strings.Builder{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting crash child: %v", err)
	}
	time.Sleep(delay)
	_ = cmd.Process.Kill() // SIGKILL: no deferred cleanup, no flushing
	err := cmd.Wait()
	if err == nil {
		t.Logf("crash child finished before the kill; validating the complete log")
	} else if !strings.Contains(err.Error(), "killed") && !strings.Contains(err.Error(), "signal") {
		// A child that *failed* (rather than was killed) invalidates the
		// run; its output says why.
		t.Fatalf("crash child failed on its own: %v\n%s", err, out.String())
	}
	info, err := os.Stat(filepath.Join(dir, "acks"))
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	return int(info.Size())
}

func TestKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a subprocess")
	}
	dir := t.TempDir()
	acked := runCrashChild(t, dir, false, 400*time.Millisecond)

	n, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery open after SIGKILL: %v", err)
	}
	defer n.Close()
	rec := n.Recovery()
	// Without checkpoints, recovered groups = durable steps. Everything the
	// child acknowledged must be there; at most the unacknowledged in-flight
	// step may additionally have survived.
	if rec.Groups < acked {
		t.Fatalf("recovered %d steps < %d acknowledged", rec.Groups, acked)
	}
	if rec.Groups > crashMaxSteps {
		t.Fatalf("recovered %d steps > %d generated", rec.Groups, crashMaxSteps)
	}
	t.Logf("child acked %d steps; recovered %d (torn tail: %v)", acked, rec.Groups, rec.TornTail)

	trace := makeTrace(crashSeed, crashMaxSteps)
	ref := replayPrefix(t, trace, rec.Groups)
	assertSameDecisions(t, "kill", n, ref, allEngineKinds)
}

func TestKillRecoveryWithCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a subprocess")
	}
	dir := t.TempDir()
	acked := runCrashChild(t, dir, true, 600*time.Millisecond)

	n, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery open after SIGKILL: %v", err)
	}
	defer n.Close()
	rec := n.Recovery()
	t.Logf("child acked %d steps; checkpoint seq %d, %d tail steps (torn: %v)",
		acked, rec.CheckpointSeq, rec.Groups, rec.TornTail)

	// With checkpoints the recovered group count covers only the log tail,
	// so locate the durable step count by scanning the deterministic trace
	// for the prefix whose state matches the recovered network. Monotonic
	// counters (users ever added, rules ever issued) pin the candidate
	// range; full decision equality then proves the match.
	trace := makeTrace(crashSeed, crashMaxSteps)
	want := stateSignature(n)
	ref := New()
	matched := -1
	for i := 0; i <= crashMaxSteps; i++ {
		if i >= acked && stateSignature(ref) == want {
			matched = i
			break
		}
		if i == crashMaxSteps {
			break
		}
		if err := applyStep(ref, trace[i]); err != nil {
			t.Fatalf("reference step %d: %v", i, err)
		}
	}
	if matched < 0 {
		t.Fatalf("no trace prefix matches the recovered state (users=%d rels=%d, acked=%d)",
			n.NumUsers(), n.NumRelationships(), acked)
	}
	t.Logf("recovered state matches trace prefix of %d steps", matched)
	// Compare decisions on a subset of engines (the full six ran in the
	// truncation differential; this test is about the checkpoint protocol).
	assertSameDecisions(t, "kill-ckpt", n, ref, []EngineKind{Online, Closure, Index})
}

// policyShape canonically renders resources with their rule IDs.
func policyShape(n *Network) string {
	var b strings.Builder
	s := n.Store()
	for _, res := range s.Resources() {
		b.WriteString(string(res))
		b.WriteByte('(')
		for _, r := range s.RulesFor(res) {
			b.WriteString(r.ID)
			b.WriteByte(',')
		}
		b.WriteString(") ")
	}
	return b.String()
}
