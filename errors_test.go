package reachac

import (
	"errors"
	"testing"
)

// TestSentinelErrors pins the errors.Is classification of every facade
// failure mode the serving layer maps to HTTP statuses.
func TestSentinelErrors(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}

	if _, err := n.AddUser("a"); !errors.Is(err, ErrDuplicateUser) {
		t.Errorf("duplicate AddUser: %v", err)
	}
	if err := n.Relate(a, 999, "friend"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("Relate to unknown user: %v", err)
	}
	if err := n.Relate(a, b, "friend"); !errors.Is(err, ErrDuplicateRelationship) {
		t.Errorf("duplicate Relate: %v", err)
	}
	if err := n.Relate(a, a, "friend"); !errors.Is(err, ErrSelfRelationship) {
		t.Errorf("self Relate: %v", err)
	}
	if err := n.Unrelate(a, b, "enemy"); !errors.Is(err, ErrUnknownRelationship) {
		t.Errorf("Unrelate of unknown type: %v", err)
	}
	if err := n.Unrelate(b, a, "friend"); !errors.Is(err, ErrUnknownRelationship) {
		t.Errorf("Unrelate of missing edge: %v", err)
	}
	if _, err := n.Share("r", 999, "friend+[1]"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("Share by unknown owner: %v", err)
	}
	if _, err := n.Share("r", a, "friend+[1]"); err != nil {
		t.Fatalf("Share: %v", err)
	}
	if _, err := n.Share("r", b, "friend+[1]"); !errors.Is(err, ErrResourceOwned) {
		t.Errorf("Share of another user's resource: %v", err)
	}
	if _, err := n.Audience("nothing"); !errors.Is(err, ErrUnknownResource) {
		t.Errorf("Audience of unknown resource: %v", err)
	}
	if _, err := n.PathAudience(999, "friend+[1]"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("PathAudience of unknown owner: %v", err)
	}
	if err := n.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Errorf("Checkpoint on non-durable network: %v", err)
	}
}

// TestSentinelErrClosed pins the closed-network classification on a durable
// network.
func TestSentinelErrClosed(t *testing.T) {
	n, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddUser("a"); !errors.Is(err, ErrClosed) {
		t.Errorf("AddUser after Close: %v", err)
	}
	if err := n.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after Close: %v", err)
	}
}

// TestStatsCounters exercises the Stats surface end to end.
func TestStatsCounters(t *testing.T) {
	n, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("r", a, "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CanAccess("r", b); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CanAccessAll("r", []UserID{a, b}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Audience("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.PathAudience(a, "friend+[1]"); err != nil {
		t.Fatal(err)
	}

	st := n.Stats()
	if st.Users != 2 || st.Relationships != 1 || st.Resources != 1 {
		t.Fatalf("sizes: %+v", st)
	}
	if !st.Durable || st.Engine != Online.String() {
		t.Fatalf("identity: %+v", st)
	}
	if st.Checks != 3 || st.BatchChecks != 1 || st.Audiences != 2 {
		t.Fatalf("read counters: %+v", st)
	}
	// 4 ops (2 users, 1 edge, 1 share) across 4 Batch calls.
	if st.Mutations != 4 || st.Batches != 4 {
		t.Fatalf("write counters: %+v", st)
	}
	if st.WALAppends != 4 || st.WALFsyncs == 0 || st.WALSegmentBytes == 0 {
		t.Fatalf("WAL counters: %+v", st)
	}
	if st.Republications == 0 || st.AuditRetained == 0 {
		t.Fatalf("derived counters: %+v", st)
	}
}

// TestViewConsistency pins that a view resolves names and decides against
// one frozen snapshot even while the live network moves on.
func TestViewConsistency(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("r", a, "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	v, err := n.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	// Mutate the live network after the view pinned its snapshot.
	c := n.MustAddUser("c")
	if err := n.Relate(a, c, "friend"); err != nil {
		t.Fatal(err)
	}

	if _, ok := v.UserID("c"); ok {
		t.Fatal("view observed a user added after it was pinned")
	}
	if v.NumUsers() != 2 || v.NumRelationships() != 1 {
		t.Fatalf("view sizes moved: %d users, %d relationships", v.NumUsers(), v.NumRelationships())
	}
	id, ok := v.UserID("b")
	if !ok || id != b {
		t.Fatalf("UserID(b) = %d, %v", id, ok)
	}
	if name, ok := v.UserName(b); !ok || name != "b" {
		t.Fatalf("UserName(b) = %q, %v", name, ok)
	}
	if _, ok := v.UserName(999); ok {
		t.Fatal("UserName(999) resolved")
	}
	d, err := v.CanAccess("r", b)
	if err != nil || d.Effect != Allow {
		t.Fatalf("view CanAccess = %+v, %v", d, err)
	}
	ds, err := v.CanAccessAll("r", []UserID{a, b})
	if err != nil || len(ds) != 2 || ds[1].Effect != Allow {
		t.Fatalf("view CanAccessAll = %v, %v", ds, err)
	}
	if ok, err := v.CheckPath(a, b, "friend+[1]"); err != nil || !ok {
		t.Fatalf("view CheckPath = %v, %v", ok, err)
	}
	aud, err := v.Audience("r")
	if err != nil || len(aud) != 1 || aud[0] != b {
		t.Fatalf("view Audience = %v, %v", aud, err)
	}
	pa, err := v.PathAudience(a, "friend+[1]")
	if err != nil || len(pa) != 1 || pa[0] != b {
		t.Fatalf("view PathAudience = %v, %v", pa, err)
	}

	// The live network meanwhile sees the new state.
	if got, err := n.PathAudience(a, "friend+[1]"); err != nil || len(got) != 2 {
		t.Fatalf("live PathAudience = %v, %v", got, err)
	}
}
