package reachac

import (
	"path/filepath"
	"testing"

	"reachac/internal/generate"
	"reachac/internal/workload"
)

func loadTestTopology() generate.Topology {
	return generate.MustNew("osn",
		generate.WithNodes(250), generate.WithSeed(6), generate.WithAttrs())
}

// TestLoadTopologyMatchesBuild: streaming a topology through chunked
// batches must produce the same network as materializing it — same
// counts, same names, same access decisions.
func TestLoadTopologyMatchesBuild(t *testing.T) {
	top := loadTestTopology()
	streamed := New()
	// An odd chunk size exercises a final partial flush.
	if err := streamed.LoadTopology(top, 37); err != nil {
		t.Fatal(err)
	}
	built := FromGraph(generate.MustBuild(top))
	if streamed.NumUsers() != built.NumUsers() ||
		streamed.NumRelationships() != built.NumRelationships() {
		t.Fatalf("streamed (%d users, %d rels) != built (%d users, %d rels)",
			streamed.NumUsers(), streamed.NumRelationships(),
			built.NumUsers(), built.NumRelationships())
	}
	for _, nw := range []*Network{streamed, built} {
		if _, err := nw.Share("album", 3, "friend+[1,2]"); err != nil {
			t.Fatal(err)
		}
	}
	for req := UserID(0); req < 250; req += 7 {
		a, err := streamed.CanAccess("album", req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := built.CanAccess("album", req)
		if err != nil {
			t.Fatal(err)
		}
		if a.Effect != b.Effect {
			t.Fatalf("requester %d: streamed=%v built=%v", req, a.Effect, b.Effect)
		}
	}
	// Topology node i must be UserID i under its generated name.
	v, err := streamed.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for _, i := range []int{0, 41, 249} {
		id, ok := v.UserID(generate.UserName(i))
		if !ok || id != UserID(i) {
			t.Fatalf("user %d resolved to (%d, %v)", i, id, ok)
		}
	}
}

// TestLoadTopologyRejectsNonEmpty: dense-ID alignment only holds from
// empty, so anything else must refuse.
func TestLoadTopologyRejectsNonEmpty(t *testing.T) {
	nw := New()
	if _, err := nw.AddUser("existing"); err != nil {
		t.Fatal(err)
	}
	if err := nw.LoadTopology(loadTestTopology(), 0); err == nil {
		t.Fatal("LoadTopology accepted a non-empty network")
	}
}

// TestLoadTopologyDurable: a streamed load into a WAL-backed network
// must survive reopen with full counts — each chunk is one durable group
// commit.
func TestLoadTopologyDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "net")
	nw, err := Open(dir, WithSync(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	top := generate.MustNew("ldbc", generate.WithNodes(400), generate.WithSeed(8))
	if err := nw.LoadTopology(top, 128); err != nil {
		t.Fatal(err)
	}
	users, rels := nw.NumUsers(), nw.NumRelationships()
	if users != 400 || rels == 0 {
		t.Fatalf("loaded (%d, %d)", users, rels)
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := Open(dir, WithSync(SyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.NumUsers() != users || back.NumRelationships() != rels {
		t.Fatalf("reopen lost data: (%d, %d) != (%d, %d)",
			back.NumUsers(), back.NumRelationships(), users, rels)
	}
}

// TestViewSourceAdapter: the View adjacency accessors must satisfy
// workload.Source semantics — same walks as the underlying graph — so
// streamed bench cells can build workloads without a *graph.Graph.
func TestViewSourceAdapter(t *testing.T) {
	top := loadTestTopology()
	g := generate.MustBuild(top)
	nw := FromGraph(g.Clone())
	v, err := nw.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for id := UserID(0); id < 250; id += 11 {
		if v.OutDegree(id) != g.OutDegree(id) {
			t.Fatalf("user %d: view degree %d, graph degree %d",
				id, v.OutDegree(id), g.OutDegree(id))
		}
		var viaView []UserID
		v.Relationships(id, func(to UserID, relType string) bool {
			if relType == "" {
				t.Fatalf("user %d: empty relType", id)
			}
			if !v.HasRelationship(id, to, relType) {
				t.Fatalf("user %d: visited relationship %d/%s not reported by HasRelationship",
					id, to, relType)
			}
			viaView = append(viaView, to)
			return true
		})
		var viaGraph []UserID
		g.Neighbors(id, func(to UserID) bool {
			viaGraph = append(viaGraph, to)
			return true
		})
		if len(viaView) != len(viaGraph) {
			t.Fatalf("user %d: view saw %d targets, graph %d", id, len(viaView), len(viaGraph))
		}
		for i := range viaView {
			if viaView[i] != viaGraph[i] {
				t.Fatalf("user %d: neighbor order diverged at %d", id, i)
			}
		}
	}
	// And a View wrapped as a Source must drive workload construction.
	specs := workload.Resources(viewSource{v}, 6, 3)
	if len(specs) != 6 {
		t.Fatalf("specs = %d", len(specs))
	}
	gen := workload.NewGenerator(viewSource{v}, workload.Mix{Name: "t", Check: 1}, workload.GenConfig{Resources: specs}, 1)
	if op := gen.Next(); op.Kind != workload.OpCheck {
		t.Fatalf("unexpected op %v", op.Kind)
	}
}

// viewSource adapts a pinned View to workload.Source (mirrors the
// adapter cmd/acbench uses for streamed cells).
type viewSource struct{ v *View }

func (s viewSource) NumNodes() int          { return s.v.NumUsers() }
func (s viewSource) OutDegree(n UserID) int { return s.v.OutDegree(n) }
func (s viewSource) Neighbors(n UserID, fn func(UserID) bool) {
	s.v.Relationships(n, func(to UserID, _ string) bool { return fn(to) })
}
func (s viewSource) HasEdge(from, to UserID, relType string) bool {
	return s.v.HasRelationship(from, to, relType)
}
