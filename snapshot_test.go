package reachac

import (
	"errors"
	"fmt"
	"testing"
)

// publish forces a publication via a read and returns the published
// snapshot.
func publish(t *testing.T, n *Network) *snapshot {
	t.Helper()
	if _, err := n.CanAccess("r", 0); err != nil {
		t.Fatal(err)
	}
	return n.snap.Load()
}

// TestDeltaAdvanceRecyclesClone pins the ping-pong: after two publications
// the retired clone is stolen and fast-forwarded instead of re-cloned, and
// an incremental evaluator survives with it.
func TestDeltaAdvanceRecyclesClone(t *testing.T) {
	n := New()
	ids := make([]UserID, 8)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("u%d", i))
	}
	if _, err := n.Share("r", ids[0], "friend+[1,2]"); err != nil {
		t.Fatal(err)
	}
	s1 := publish(t, n)
	if err := n.Relate(ids[0], ids[1], "friend"); err != nil {
		t.Fatal(err)
	}
	s2 := publish(t, n)
	if s2 == s1 || s2.g == s1.g {
		t.Fatal("graph mutation must publish a fresh clone")
	}
	if err := n.Relate(ids[1], ids[2], "friend"); err != nil {
		t.Fatal(err)
	}
	s3 := publish(t, n)
	if s3.g != s1.g {
		t.Fatal("third publication should delta-advance the retired clone")
	}
	if s3.eval != s1.eval {
		t.Fatal("online evaluator should advance in place with its clone")
	}
	if s3.version != n.g.Version() {
		t.Fatalf("advanced snapshot at version %d, master at %d", s3.version, n.g.Version())
	}
	// The advanced clone must actually contain the new relationship.
	if d, err := n.CanAccess("r", ids[2]); err != nil || d.Effect != Allow {
		t.Fatalf("friend-of-friend via advanced clone = (%v, %v)", d.Effect, err)
	}
	// And the ping-pong continues: the next mutation steals s2's clone.
	if err := n.Unrelate(ids[1], ids[2], "friend"); err != nil {
		t.Fatal(err)
	}
	s4 := publish(t, n)
	if s4.g != s2.g {
		t.Fatal("fourth publication should recycle the second clone")
	}
	if d, err := n.CanAccess("r", ids[2]); err != nil || d.Effect != Deny {
		t.Fatalf("removed relationship still grants = (%v, %v)", d.Effect, err)
	}
}

// TestPolicyOnlyPublicationShares pins that a policy-only change keeps
// sharing the clone and evaluator, and that the shared clone is never
// offered for stealing.
func TestPolicyOnlyPublicationShares(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("r", a, "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	s1 := publish(t, n)
	if _, err := n.Share("r", a, "friend+[1,2]"); err != nil {
		t.Fatal(err)
	}
	s2 := publish(t, n)
	if s2 == s1 || s2.g != s1.g || s2.eval != s1.eval {
		t.Fatal("policy-only change must share clone and evaluator")
	}
	if n.spare == s1 {
		t.Fatal("a snapshot sharing the published clone must not become the spare")
	}
}

// TestDeltaWindowOverflowFallsBack pins the bounded-log fallback: when more
// mutations land than the window retains, publication falls back to a full
// clone and decisions stay exact.
func TestDeltaWindowOverflowFallsBack(t *testing.T) {
	n := New()
	ids := make([]UserID, 4)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("u%d", i))
	}
	n.Graph().SetDeltaLogLimit(4)
	if _, err := n.Share("r", ids[0], "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	s1 := publish(t, n)
	_ = s1
	if err := n.Relate(ids[0], ids[1], "friend"); err != nil {
		t.Fatal(err)
	}
	publish(t, n)
	// Blow past the window (limit 4, trims at 8): 20 node additions.
	for i := 0; i < 20; i++ {
		n.MustAddUser(fmt.Sprintf("extra%02d", i))
	}
	s3 := publish(t, n)
	if s3.g == s1.g {
		t.Fatal("overflowed window must not delta-advance the old clone")
	}
	if d, err := n.CanAccess("r", ids[1]); err != nil || d.Effect != Allow {
		t.Fatalf("decision after overflow fallback = (%v, %v)", d.Effect, err)
	}
}

// TestPublishCompactsTombstones pins the full-rebuild compaction: enough
// Unrelate churn leaves the master with zero tombstones after the next
// publication.
func TestPublishCompactsTombstones(t *testing.T) {
	n := New()
	const members = 90
	ids := make([]UserID, members)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("u%02d", i))
	}
	n.Graph().SetDeltaLogLimit(-1) // force the full-rebuild path
	for i := 0; i < members-1; i++ {
		if err := n.Relate(ids[i], ids[i+1], "friend"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Share("r", ids[0], "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < members-1; i++ {
		if err := n.Unrelate(ids[i], ids[i+1], "friend"); err != nil {
			t.Fatal(err)
		}
	}
	if n.Graph().NumTombstones() != members-1 {
		t.Fatalf("tombstones = %d, want %d", n.Graph().NumTombstones(), members-1)
	}
	publish(t, n)
	if got := n.Graph().NumTombstones(); got != 0 {
		t.Fatalf("publication left %d tombstones", got)
	}
	if d, err := n.CanAccess("r", ids[1]); err != nil || d.Effect != Deny {
		t.Fatalf("decision after compaction = (%v, %v)", d.Effect, err)
	}
}

// TestRelateMutualRollback pins the half-application fix: when the second
// direction fails, the first is rolled back.
func TestRelateMutualRollback(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(b, a, "friend"); err != nil {
		t.Fatal(err)
	}
	err := n.RelateMutual(a, b, "friend")
	if !errors.Is(err, ErrDuplicateRelationship) {
		t.Fatalf("RelateMutual over an existing reverse edge: %v", err)
	}
	if n.Graph().HasEdge(a, b, "friend") {
		t.Fatal("first direction not rolled back")
	}
	if !n.Graph().HasEdge(b, a, "friend") {
		t.Fatal("pre-existing edge must survive the rollback")
	}
	// And the success path still works.
	c := n.MustAddUser("c")
	if err := n.RelateMutual(a, c, "friend"); err != nil {
		t.Fatal(err)
	}
	if !n.Graph().HasEdge(a, c, "friend") || !n.Graph().HasEdge(c, a, "friend") {
		t.Fatal("mutual relationship incomplete")
	}
}
