package reachac

import (
	"errors"
	"fmt"
	"testing"
)

// TestBatchApplies pins the success path: one Batch call lands every
// mutation and the next read observes all of them against one snapshot.
func TestBatchApplies(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	var rule string
	err := n.Batch(func(tx *Tx) error {
		c, err := tx.AddUser("c")
		if err != nil {
			return err
		}
		if err := tx.Relate(a, b, "friend"); err != nil {
			return err
		}
		if err := tx.Relate(b, c, "friend"); err != nil {
			return err
		}
		rule, err = tx.Share("album", a, "friend+[1,2]")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := n.UserID("c")
	if !ok {
		t.Fatal("batched AddUser lost")
	}
	d, err := n.CanAccess("album", c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow || d.RuleID != rule {
		t.Fatalf("batched state not visible: %+v", d)
	}
}

// TestBatchRollsBack pins the failure path: a failing batch undoes its
// relationship and policy mutations in reverse order.
func TestBatchRollsBack(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "colleague"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("album", a, "colleague+[1]"); err != nil {
		t.Fatal(err)
	}
	rules := func() int { return len(n.Store().RulesFor("album")) }
	preEdges := n.NumRelationships()
	preRules := rules()
	boom := errors.New("boom")
	err := n.Batch(func(tx *Tx) error {
		if err := tx.Relate(b, a, "colleague"); err != nil {
			return err
		}
		if err := tx.Unrelate(a, b, "colleague"); err != nil {
			return err
		}
		if _, err := tx.Share("album", a, "friend+[1]"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Batch error = %v, want boom", err)
	}
	if got := n.NumRelationships(); got != preEdges {
		t.Fatalf("relationships = %d after rollback, want %d", got, preEdges)
	}
	if !n.Graph().HasEdge(a, b, "colleague") {
		t.Fatal("unrelated edge not restored")
	}
	if n.Graph().HasEdge(b, a, "colleague") {
		t.Fatal("related edge not removed")
	}
	if got := rules(); got != preRules {
		t.Fatalf("rules = %d after rollback, want %d", got, preRules)
	}
	// Decisions reflect the rolled-back state.
	d, err := n.CanAccess("album", b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow {
		t.Fatalf("pre-batch rule lost: %+v", d)
	}
}

// TestBatchRelateUnrelateRollback pins the tricky rollback interleaving:
// a batch that relates then unrelates the same pair and fails must leave
// the pair unrelated (the Unrelate undo re-adds the edge under a fresh ID;
// the Relate undo must still find and remove it).
func TestBatchRelateUnrelateRollback(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	boom := errors.New("boom")
	err := n.Batch(func(tx *Tx) error {
		if err := tx.Relate(a, b, "friend"); err != nil {
			return err
		}
		if err := tx.Unrelate(a, b, "friend"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n.Graph().HasEdge(a, b, "friend") {
		t.Fatal("relate+unrelate rollback leaked the edge")
	}
	if got := n.NumRelationships(); got != 0 {
		t.Fatalf("relationships = %d after rollback, want 0", got)
	}
}

// TestBatchRevokeRollback pins that a revoked rule is restored when the
// batch fails.
func TestBatchRevokeRollback(t *testing.T) {
	n := New()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	if err := n.Relate(a, b, "friend"); err != nil {
		t.Fatal(err)
	}
	rid, err := n.Share("album", a, "friend+[1]")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = n.Batch(func(tx *Tx) error {
		if !tx.Revoke("album", rid) {
			return fmt.Errorf("rule %s missing", rid)
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	d, err := n.CanAccess("album", b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow || d.RuleID != rid {
		t.Fatalf("revoked rule not restored: %+v", d)
	}
}

// TestBatchSingleRepublication pins the cost model the Batch API exists
// for: a burst of batched mutations triggers exactly one republication on
// the next read.
func TestBatchSingleRepublication(t *testing.T) {
	n := New()
	ids := make([]UserID, 10)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("u%d", i))
	}
	if _, err := n.Share("r", ids[0], "friend+[1,3]"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.CanAccess("r", ids[1]); err != nil {
		t.Fatal(err)
	}
	before := n.snap.Load()
	err := n.Batch(func(tx *Tx) error {
		for i := 0; i < 9; i++ {
			if err := tx.Relate(ids[i], ids[i+1], "friend"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.snap.Load() != before {
		t.Fatal("Batch itself must not republish")
	}
	if d, err := n.CanAccess("r", ids[3]); err != nil || d.Effect != Allow {
		t.Fatalf("post-batch decision = (%v, %v)", d.Effect, err)
	}
	after := n.snap.Load()
	if after == before {
		t.Fatal("first read after the batch must republish")
	}
	if after.version != n.Graph().Version() {
		t.Fatal("one republication must absorb the whole batch")
	}
}

// TestTxSubPartialRollback pins the group-commit coalescing hook: a failed
// sub-transaction rolls back only its own mutations, its groupmates commit,
// and its non-invertible node additions stay logged so WAL replay allocates
// the same IDs the live graph did.
func TestTxSubPartialRollback(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a := n.MustAddUser("a")
	b := n.MustAddUser("b")
	c := n.MustAddUser("c")

	err = n.Batch(func(tx *Tx) error {
		if err := tx.Sub(func(tx *Tx) error { return tx.Relate(a, b, "friend") }); err != nil {
			t.Fatalf("first sub: %v", err)
		}
		suberr := tx.Sub(func(tx *Tx) error {
			if err := tx.Relate(b, c, "friend"); err != nil {
				return err
			}
			if _, err := tx.AddUser("ghost"); err != nil {
				return err
			}
			return errors.New("boom")
		})
		if suberr == nil {
			t.Fatal("failing sub reported success")
		}
		return tx.Sub(func(tx *Tx) error { return tx.Relate(a, c, "colleague") })
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}

	if !n.Graph().HasEdge(a, b, "friend") || !n.Graph().HasEdge(a, c, "colleague") {
		t.Fatal("successful sub-transactions lost")
	}
	if n.Graph().HasEdge(b, c, "friend") {
		t.Fatal("failed sub-transaction's edge survived")
	}
	ghost, ok := n.UserID("ghost")
	if !ok {
		t.Fatal("non-invertible ghost node vanished in memory")
	}

	// Replay must allocate identical IDs: the ghost's record stayed in the
	// group even though its sub-transaction failed.
	dora := n.MustAddUser("dora")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	n2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	if got, ok := n2.UserID("ghost"); !ok || got != ghost {
		t.Fatalf("ghost = %d, %v after replay (want %d)", got, ok, ghost)
	}
	if got, ok := n2.UserID("dora"); !ok || got != dora {
		t.Fatalf("dora = %d, %v after replay (want %d)", got, ok, dora)
	}
	if !n2.Graph().HasEdge(a, b, "friend") || n2.Graph().HasEdge(b, c, "friend") {
		t.Fatal("replayed graph diverges from the live one")
	}
}
