package reachac

import "testing"

// TestStatsDelta: Delta must subtract the monotonic counters and carry
// the gauges — the contract acbench's per-scenario counter attribution
// rests on.
func TestStatsDelta(t *testing.T) {
	prev := Stats{
		Users: 10, Relationships: 20, Engine: "online-bfs",
		Checks: 100, BatchChecks: 5, Audiences: 2,
		Mutations: 50, Batches: 30, Republications: 7,
		Checkpoints: 1, CheckpointsSkipped: 2,
		WALAppends: 40, WALFsyncs: 25, WALSegmentBytes: 111, WALSegmentSeq: 1,
	}
	cur := Stats{
		Users: 12, Relationships: 24, Engine: "online-bfs", Durable: true,
		Checks: 350, BatchChecks: 9, Audiences: 6,
		Mutations: 80, Batches: 45, Republications: 9,
		Checkpoints: 2, CheckpointsSkipped: 5,
		WALAppends: 70, WALFsyncs: 31, WALSegmentBytes: 222, WALSegmentSeq: 2,
	}
	d := cur.Delta(prev)
	if d.Checks != 250 || d.BatchChecks != 4 || d.Audiences != 4 ||
		d.Mutations != 30 || d.Batches != 15 || d.Republications != 2 ||
		d.Checkpoints != 1 || d.CheckpointsSkipped != 3 ||
		d.WALAppends != 30 || d.WALFsyncs != 6 {
		t.Fatalf("counter deltas wrong: %+v", d)
	}
	// Gauges and identity fields carry the current values.
	if d.Users != 12 || d.Relationships != 24 || !d.Durable ||
		d.Engine != "online-bfs" || d.WALSegmentBytes != 222 || d.WALSegmentSeq != 2 {
		t.Fatalf("gauges not carried: %+v", d)
	}
}

// TestStatsDeltaLive exercises Delta over a real network window.
func TestStatsDeltaLive(t *testing.T) {
	n := New()
	alice := n.MustAddUser("alice")
	bob := n.MustAddUser("bob")
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("photo", alice, "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	before := n.Stats()
	for i := 0; i < 5; i++ {
		if _, err := n.CanAccess("photo", bob); err != nil {
			t.Fatal(err)
		}
	}
	d := n.Stats().Delta(before)
	if d.Checks != 5 {
		t.Fatalf("window checks = %d, want 5", d.Checks)
	}
	if d.Mutations != 0 {
		t.Fatalf("window mutations = %d, want 0", d.Mutations)
	}
}
