package reachac

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPersistenceRoundTrips drives table-driven scenarios that interleave
// mutations, engine switches and every persistence surface the facade
// offers — Save/Load (graph only), SavePolicies/LoadPolicies (policies
// only), SaveState/LoadState (both) — and asserts the expected decisions at
// marked points. It pins the documented split: Save/Load alone silently
// yields an empty policy store, which is why each save step says which
// halves it round-trips.
func TestPersistenceRoundTrips(t *testing.T) {
	// Step kinds:
	//   user:NAME            add a user
	//   rel:FROM,TO,LABEL    add a relationship
	//   unrel:FROM,TO,LABEL  remove one
	//   share:RES,OWNER,PATH attach a rule
	//   engine:KIND          switch engines (by EngineKind integer)
	//   graph-rt             round-trip through Save/Load (policies LOST)
	//   policy-rt            round-trip policies through SavePolicies/LoadPolicies
	//   full-rt              round-trip through Save+SavePolicies/Load+LoadPolicies
	//   state-rt             round-trip through SaveState/LoadState
	//   allow:RES,USER / deny:RES,USER / nores:RES,USER assert a decision
	//     (nores = deny because the resource is unknown — the policy half
	//     was dropped by a graph-only round trip)
	type scenario struct {
		name  string
		steps []string
	}
	scenarios := []scenario{
		{
			name: "save-load-drops-policies-by-design",
			steps: []string{
				"user:alice", "user:bob", "rel:alice,bob,friend",
				"share:photo,alice,friend+[1,1]",
				"allow:photo,bob",
				"graph-rt",
				"nores:photo,bob", // graph survived, policies did not
				"share:photo,alice,friend+[1,1]",
				"allow:photo,bob", // and re-sharing works after the trip
			},
		},
		{
			name: "full-round-trip-preserves-decisions",
			steps: []string{
				"user:alice", "user:bob", "user:carol",
				"rel:alice,bob,friend", "rel:bob,carol,friend",
				"share:photo,alice,friend+[1,2]",
				"allow:photo,carol",
				"full-rt",
				"allow:photo,bob", "allow:photo,carol",
				"unrel:bob,carol,friend",
				"deny:photo,carol",
			},
		},
		{
			name: "state-round-trip-interleaved-with-mutations",
			steps: []string{
				"user:alice", "user:bob",
				"rel:alice,bob,colleague",
				"share:doc,alice,colleague+[1,1]",
				"state-rt",
				"allow:doc,bob",
				"user:carol", "rel:alice,carol,colleague",
				"allow:doc,carol",
				"state-rt",
				"allow:doc,carol",
				"unrel:alice,bob,colleague",
				"deny:doc,bob",
			},
		},
		{
			name: "engine-switches-across-round-trips",
			steps: []string{
				"user:alice", "user:bob", "user:carol",
				"rel:alice,bob,friend", "rel:bob,carol,colleague",
				"share:note,alice,friend+[1,1]/colleague+[1,1]",
				"engine:3", // Closure
				"allow:note,carol",
				"state-rt",
				"engine:4", // Index
				"allow:note,carol", "deny:note,bob",
				"full-rt",
				"engine:5", // IndexPaperJoin
				"allow:note,carol",
				"engine:0", // Online
				"allow:note,carol",
			},
		},
		{
			name: "policy-only-round-trip-keeps-live-graph",
			steps: []string{
				"user:alice", "user:bob",
				"rel:alice,bob,family",
				"share:will,alice,family+[1,2]",
				"policy-rt",
				"allow:will,bob",
				"user:carol", "rel:bob,carol,family",
				"allow:will,carol", // new edge + old (reloaded) policy
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			n := New()
			users := map[string]UserID{}
			lookup := func(name string) UserID {
				id, ok := users[name]
				if !ok {
					t.Fatalf("step references unknown user %q", name)
				}
				return id
			}
			for i, step := range sc.steps {
				var a, b, c string
				fail := func(err error) {
					t.Fatalf("step %d (%s): %v", i, step, err)
				}
				switch {
				case scan(step, "user:%s", &a):
					id, err := n.AddUser(a)
					if err != nil {
						fail(err)
					}
					users[a] = id
				case scan(step, "rel:%s,%s,%s", &a, &b, &c):
					if err := n.Relate(lookup(a), lookup(b), c); err != nil {
						fail(err)
					}
				case scan(step, "unrel:%s,%s,%s", &a, &b, &c):
					if err := n.Unrelate(lookup(a), lookup(b), c); err != nil {
						fail(err)
					}
				case scan(step, "share:%s,%s,%s", &a, &b, &c):
					if _, err := n.Share(a, lookup(b), c); err != nil {
						fail(err)
					}
				case scan(step, "engine:%s", &a):
					var k int
					fmt.Sscanf(a, "%d", &k)
					if err := n.UseEngine(EngineKind(k)); err != nil {
						fail(err)
					}
				case step == "graph-rt":
					var buf bytes.Buffer
					if err := n.Save(&buf); err != nil {
						fail(err)
					}
					n2, err := Load(&buf)
					if err != nil {
						fail(err)
					}
					n = n2
				case step == "policy-rt":
					var buf bytes.Buffer
					if err := n.SavePolicies(&buf); err != nil {
						fail(err)
					}
					if err := n.LoadPolicies(&buf); err != nil {
						fail(err)
					}
				case step == "full-rt":
					var gb, pb bytes.Buffer
					if err := n.Save(&gb); err != nil {
						fail(err)
					}
					if err := n.SavePolicies(&pb); err != nil {
						fail(err)
					}
					n2, err := Load(&gb)
					if err != nil {
						fail(err)
					}
					if err := n2.LoadPolicies(&pb); err != nil {
						fail(err)
					}
					n = n2
				case step == "state-rt":
					var buf bytes.Buffer
					if err := n.SaveState(&buf); err != nil {
						fail(err)
					}
					n2, err := LoadState(&buf)
					if err != nil {
						fail(err)
					}
					n = n2
				case scan(step, "allow:%s,%s", &a, &b):
					d, err := n.CanAccess(a, lookup(b))
					if err != nil {
						fail(err)
					}
					if d.Effect != Allow {
						t.Fatalf("step %d (%s): denied (%s)", i, step, d.Reason)
					}
				case scan(step, "deny:%s,%s", &a, &b):
					d, err := n.CanAccess(a, lookup(b))
					if err != nil {
						fail(err)
					}
					if d.Effect != Deny {
						t.Fatalf("step %d (%s): allowed via %q", i, step, d.RuleID)
					}
				case scan(step, "nores:%s,%s", &a, &b):
					d, err := n.CanAccess(a, lookup(b))
					if err != nil {
						fail(err)
					}
					if d.Effect != Deny || d.Reason != "unknown resource" {
						t.Fatalf("step %d (%s): got (%v, %q)", i, step, d.Effect, d.Reason)
					}
				default:
					t.Fatalf("unparsable step %q", step)
				}
			}
		})
	}
}

// scan matches a step against a pattern, splitting both on ':' and ',' and
// binding %s segments (fmt.Sscanf's %s is whitespace-delimited and would
// swallow the separators). When the input has more segments than the
// pattern and the pattern ends in %s, the surplus is folded back into the
// final binding with commas — path expressions like friend+[1,2] contain
// commas of their own.
func scan(input, pattern string, out ...*string) bool {
	ps := splitAny(pattern)
	is := splitAny(input)
	if len(is) > len(ps) && len(ps) > 0 && ps[len(ps)-1] == "%s" {
		tail := is[len(ps)-1:]
		folded := tail[0]
		for _, t := range tail[1:] {
			folded += "," + t
		}
		is = append(is[:len(ps)-1], folded)
	}
	if len(ps) != len(is) {
		return false
	}
	oi := 0
	for i, p := range ps {
		if p == "%s" {
			if oi >= len(out) {
				return false
			}
			*out[oi] = is[i]
			oi++
			continue
		}
		if p != is[i] {
			return false
		}
	}
	return oi == len(out)
}

func splitAny(s string) []string {
	var parts []string
	cur := ""
	for _, r := range s {
		if r == ':' || r == ',' {
			parts = append(parts, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(parts, cur)
}
