package reachac

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDifferentialAudienceIncremental replays one randomized mutation trace
// through two identical networks — one publishing snapshots via the
// delta-advance path, where the audience cache is maintained incrementally
// (search.AudienceCache.Advance), one with the delta log disabled so every
// publication rebuilds graph, evaluator and audience cache from scratch —
// across all six engine kinds, and asserts Audience and PathAudience agree
// after every mutation. It is the end-to-end counterpart of the
// search-level TestAudienceCacheAdvance: incremental audience maintenance
// must be invisible to callers.
func TestDifferentialAudienceIncremental(t *testing.T) {
	kinds := []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7000 + kind)))
			delta := New()
			rebuild := New()
			rebuild.Graph().SetDeltaLogLimit(-1)
			nets := []*Network{delta, rebuild}

			const members = 24
			ids := make([]UserID, members)
			for i := range ids {
				name := fmt.Sprintf("m%02d", i)
				for _, n := range nets {
					ids[i] = n.MustAddUser(name, IntAttr("age", 10+i*3))
				}
			}
			type rel struct {
				from, to UserID
				label    string
			}
			labels := []string{"friend", "colleague", "parent"}
			var live []rel
			addRel := func(r rel) {
				e1 := delta.Relate(r.from, r.to, r.label)
				e2 := rebuild.Relate(r.from, r.to, r.label)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("Relate divergence: %v vs %v", e1, e2)
				}
				if e1 == nil {
					live = append(live, r)
				}
			}
			for i := 0; i < members; i++ {
				addRel(rel{ids[i], ids[(i+1)%members], "friend"})
				if i%2 == 0 {
					addRel(rel{ids[i], ids[(i+5)%members], "colleague"})
				}
			}
			for _, n := range nets {
				if _, err := n.Share("album", ids[0], "friend+[1,3]"); err != nil {
					t.Fatal(err)
				}
				if _, err := n.Share("album", ids[0], "colleague+[1]/friend+[1]"); err != nil {
					t.Fatal(err)
				}
				if err := n.UseEngine(kind); err != nil {
					t.Fatal(err)
				}
			}

			sameAudience := func(a, b []UserID) bool {
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
				return true
			}
			pathExprs := []string{"friend+[1,2]", "colleague-[1]/friend+[1,2]"}
			check := func(step string) {
				t.Helper()
				a1, err := delta.Audience("album")
				if err != nil {
					t.Fatalf("%s: delta Audience: %v", step, err)
				}
				a2, err := rebuild.Audience("album")
				if err != nil {
					t.Fatalf("%s: rebuild Audience: %v", step, err)
				}
				if !sameAudience(a1, a2) {
					t.Fatalf("%s: Audience: incremental %v, rebuild %v", step, a1, a2)
				}
				owner := ids[rng.Intn(members)]
				for _, expr := range pathExprs {
					p1, err := delta.PathAudience(owner, expr)
					if err != nil {
						t.Fatal(err)
					}
					p2, err := rebuild.PathAudience(owner, expr)
					if err != nil {
						t.Fatal(err)
					}
					if !sameAudience(p1, p2) {
						t.Fatalf("%s: PathAudience(%d, %s): incremental %v, rebuild %v",
							step, owner, expr, p1, p2)
					}
				}
				// Cross-check the audience against point decisions: a sampled
				// requester is in the audience iff access is granted.
				req := ids[rng.Intn(members)]
				d, err := delta.CanAccess("album", req)
				if err != nil {
					t.Fatal(err)
				}
				inAud := false
				for _, id := range a1 {
					if id == req {
						inAud = true
						break
					}
				}
				if req != ids[0] && inAud != (d.Effect == Allow) {
					t.Fatalf("%s: requester %d: audience membership %v, CanAccess %v",
						step, req, inAud, d.Effect)
				}
			}
			check("initial")

			rounds := 60
			if kind == Index || kind == IndexPaperJoin {
				rounds = 25 // index rebuilds are the expensive arm
			}
			for round := 0; round < rounds; round++ {
				switch op := rng.Intn(10); {
				case op < 4: // add a relationship
					from, to := ids[rng.Intn(members)], ids[rng.Intn(members)]
					if from != to {
						addRel(rel{from, to, labels[rng.Intn(len(labels))]})
					}
				case op < 7: // remove a live relationship
					if len(live) > 0 {
						i := rng.Intn(len(live))
						r := live[i]
						e1 := delta.Unrelate(r.from, r.to, r.label)
						e2 := rebuild.Unrelate(r.from, r.to, r.label)
						if (e1 == nil) != (e2 == nil) {
							t.Fatalf("Unrelate divergence: %v vs %v", e1, e2)
						}
						live = append(live[:i], live[i+1:]...)
					}
				case op < 8: // add a member (node-only delta)
					name := fmt.Sprintf("x%03d", round)
					for _, n := range nets {
						n.MustAddUser(name)
					}
				case op < 9: // batched mutation burst
					from := ids[rng.Intn(members)]
					var errs [2]error
					for i, n := range nets {
						errs[i] = n.Batch(func(tx *Tx) error {
							for k := 1; k <= 3; k++ {
								to := ids[(int(from)+k*5)%members]
								if to == from {
									continue
								}
								if err := tx.Relate(from, to, "colleague"); err != nil {
									return err
								}
							}
							return nil
						})
					}
					if (errs[0] == nil) != (errs[1] == nil) {
						t.Fatalf("Batch divergence: %v vs %v", errs[0], errs[1])
					}
				default: // policy churn
					rid1, e1 := delta.Share("album", ids[0], "parent-[1]/friend+[1,2]")
					rid2, e2 := rebuild.Share("album", ids[0], "parent-[1]/friend+[1,2]")
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("Share divergence: %v vs %v", e1, e2)
					}
					if e1 == nil {
						check("policy-add")
						if delta.Revoke("album", rid1) != rebuild.Revoke("album", rid2) {
							t.Fatal("Revoke divergence")
						}
					}
				}
				check(fmt.Sprintf("round %d", round))
			}
		})
	}
}
