// Package reachac is a reachability-based access control library for social
// networks, implementing Ben Dhia's EDBT/ICDT 2012 model: users protect
// shared resources with access rules whose audience is a path expression
// over the social graph — e.g. "friend+[1,2]/colleague+[1]" grants access to
// the colleagues of my friends, up to friends-of-friends.
//
// The package wraps the full implementation: the labeled social graph, the
// path-expression policy language, the policy store with deny-by-default
// enforcement, and three interchangeable query evaluators — online
// constrained search, per-label transitive closure, and the paper's
// cluster-based join index (line graph → SCC condensation → interval
// labeling → 2-hop cover → W-table).
//
// Quick start:
//
//	n := reachac.New()
//	alice := n.MustAddUser("alice")
//	bob := n.MustAddUser("bob")
//	n.Relate(alice, bob, "friend")
//	n.Share("alice/photos", alice, "friend+[1,2]")
//	d, _ := n.CanAccess("alice/photos", bob)
//	fmt.Println(d.Effect) // allow
//
// All Network methods are safe for concurrent use. Access checks are
// snapshot-isolated: they run lock-free against an immutable published
// engine snapshot with a per-snapshot decision cache, so read throughput
// scales with cores; CanAccessAll batches many requesters against one
// consistent snapshot. Republication after a mutation is incremental
// (O(Δ) via the graph's delta log) whenever possible, and Batch coalesces
// many mutations into one republication. See ARCHITECTURE.md for the
// publication protocol.
//
// Networks created with Open(dir) are durable: every acknowledged mutation
// batch is appended to a write-ahead log as one atomic, CRC-framed record
// group (fsynced per the configured sync policy) before the mutator
// returns, a size-triggered background checkpoint compacts the log, and
// Open recovers exactly the acknowledged prefix after a crash — a torn
// final record is dropped, not fatal. See the "Durability and recovery"
// section of ARCHITECTURE.md.
//
// The serving stack (cmd/acserverd + the client package) exposes the same
// surface over HTTP; cmd/acbench load-tests both — embedded facade and
// daemon — with named mixed-operation scenarios and writes the
// machine-readable perf artifact CI gates regressions on. Stats returns
// the operation counters both tools sample; Stats.Delta bounds a window.
//
// See the examples/ directory for complete programs.
package reachac
