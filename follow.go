package reachac

import (
	"fmt"
	"net/http"
	"time"

	"reachac/internal/replica"
	"reachac/internal/wal"
)

// ReplicaStatus is a follower's replication state; see replica.Status.
type ReplicaStatus = replica.Status

// ChainReport is the result of an audit-chain verification; see
// wal.ChainReport.
type ChainReport = wal.ChainReport

// VerifyChain verifies the tamper-evidence hash chain of the log directory
// offline: every record group's link to its predecessor, anchored at the
// newest checkpoint. It reports the verified extent; a broken link comes back
// as a *wal.ChainError naming the first divergent record. The directory must
// not be open (the verifier reads unlocked).
func VerifyChain(dir string) (ChainReport, error) {
	return wal.VerifyChain(dir)
}

// WithFollow opens the network as a read replica of the leader at addr
// (host:port or an http URL). The network bootstraps from the leader's
// newest checkpoint if needed, replays the shipped log into its own
// directory, and keeps applying the leader's tail; every mutation method
// returns ErrReadOnly. Sync and checkpoint options have no effect on a
// follower — it mirrors the leader's bytes verbatim and never compacts.
func WithFollow(addr string) Option {
	return func(c *openConfig) { c.follow = addr }
}

// WithFollowHTTP overrides the follower's HTTP client (tests inject fault
// proxies); only meaningful together with WithFollow.
func WithFollowHTTP(hc *http.Client) Option {
	return func(c *openConfig) { c.followHTTP = hc }
}

// openFollower is Open's body for WithFollow: mirror the leader's log into
// dir, build the network from the recovered state, and start applying the
// tail.
func openFollower(dir string, cfg openConfig) (*Network, error) {
	f, rec, err := replica.Open(replica.Config{Dir: dir, Leader: cfg.follow, HTTP: cfg.followHTTP})
	if err != nil {
		return nil, err
	}
	n := newNetwork(rec.Graph, rec.Store)
	n.follower = f
	n.recovery = RecoveryInfo{Groups: rec.Groups, TornTail: rec.TornTail, CheckpointSeq: rec.CheckpointSeq}
	if err := n.UseEngine(cfg.kind); err != nil {
		f.Close()
		return nil, err
	}
	f.Start(n.applyReplicated)
	return n, nil
}

// applyReplicated folds one verified, persisted record group from the leader
// into the live state. It runs on the follower's tail goroutine, serialized
// with (nonexistent) mutators by n.mu; the next read republishes the engine
// snapshot exactly as it would after a local mutation.
func (n *Network) applyReplicated(ops []wal.Op) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.store.Load()
	for _, op := range ops {
		ns, err := op.Apply(n.g, s)
		if err != nil {
			return err
		}
		s = ns
	}
	if s != n.store.Load() {
		n.store.Store(s)
	}
	n.ctr.mutations.Add(uint64(len(ops)))
	n.ctr.batches.Add(1)
	return nil
}

// Follower reports whether the network is a read replica (opened with
// WithFollow).
func (n *Network) Follower() bool { return n.follower != nil }

// ReplicaStatus returns the follower's replication state — cursor, leader
// position, connectivity, staleness inputs. The zero value on non-followers.
func (n *Network) ReplicaStatus() ReplicaStatus {
	if n.follower == nil {
		return ReplicaStatus{}
	}
	return n.follower.Status()
}

// ReplicaSource returns the WAL-shipping source a serving layer mounts to
// make this (durable, leader) network followable; nil on non-durable
// networks and on followers.
func (n *Network) ReplicaSource() *replica.Source { return n.replSource }

// ReplicaEpoch returns the leadership epoch: the epoch this leader serves
// under, or the epoch a follower is applying. Zero on non-durable networks.
func (n *Network) ReplicaEpoch() uint64 {
	if n.follower != nil {
		return n.follower.Status().Epoch
	}
	if n.replSource != nil {
		return n.replSource.Epoch()
	}
	return 0
}

// replicaStats fills the replication block of a Stats snapshot.
func (n *Network) replicaStats(st *Stats) {
	if n.replSource != nil {
		st.ReplicaEpoch = n.replSource.Epoch()
	}
	if n.follower == nil {
		return
	}
	rs := n.follower.Status()
	st.Follower = true
	st.ReplicaEpoch = rs.Epoch
	st.ReplicaConnected = rs.Connected
	st.ReplicaHalted = rs.Halted
	st.ReplicaAppliedSeq = rs.AppliedSeq
	st.ReplicaAppliedOff = rs.AppliedOff
	st.ReplicaGroups = rs.Groups
	st.ReplicaLeaderSeq = rs.LeaderSeq
	st.ReplicaLeaderOff = rs.LeaderOff
	st.ReplicaLagBytes = rs.LagBytes()
	if !rs.LastContact.IsZero() {
		st.ReplicaStalenessMS = time.Since(rs.LastContact).Milliseconds()
	}
}

// closeFollower stops replication and releases the follower's directory;
// reads keep serving the last applied state. Called from Close.
func (n *Network) closeFollower() error {
	n.mu.Lock()
	if n.follower == nil || n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	return n.follower.Close()
}

// errFollowerReadOnly is the mutation rejection on a read replica.
func (n *Network) errFollowerReadOnly() error {
	return fmt.Errorf("reachac: %w: network is a read replica following %s",
		ErrReadOnly, n.follower.Status().Leader)
}
