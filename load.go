package reachac

import (
	"fmt"
	"sort"

	"reachac/internal/generate"
)

// DefaultLoadChunk is the LoadTopology batch size when chunkOps <= 0:
// large enough to amortize commit (and, on a durable network, WAL
// group-commit) overhead, small enough that peak memory stays bounded by
// the chunk, not the graph.
const DefaultLoadChunk = 8192

// LoadTopology streams a generated topology into an empty network as a
// sequence of Batch transactions of at most chunkOps operations each.
// Nothing but the current chunk is buffered, so a million-node topology
// loads under bounded memory — the whole point of the streaming
// generator redesign; on a durable network every chunk is one WAL group
// commit, giving crash-consistent resumability at chunk granularity.
//
// The network must be empty: topology node i becomes UserID i (the
// contract acbench and the serving drivers rely on to map generated IDs
// to members). A failed emit aborts the load with the partial prefix
// committed; callers that need all-or-nothing should load into a fresh
// directory and discard it on error.
func (n *Network) LoadTopology(t generate.Topology, chunkOps int) error {
	if n.NumUsers() != 0 {
		return fmt.Errorf("reachac: LoadTopology needs an empty network, have %d users", n.NumUsers())
	}
	if chunkOps <= 0 {
		chunkOps = DefaultLoadChunk
	}
	pending := make([]generate.Op, 0, chunkOps)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		err := n.Batch(func(tx *Tx) error {
			for _, op := range pending {
				switch op.Kind {
				case generate.OpNode:
					if _, err := tx.AddUser(op.Name, attrList(op)...); err != nil {
						return err
					}
				case generate.OpEdge:
					if err := tx.Relate(op.From, op.To, op.Label); err != nil {
						return err
					}
				default:
					return fmt.Errorf("reachac: unknown topology op kind %d", op.Kind)
				}
			}
			return nil
		})
		pending = pending[:0]
		return err
	}
	err := t.Stream(func(op generate.Op) error {
		pending = append(pending, op)
		if len(pending) >= chunkOps {
			return flush()
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("reachac: loading %s topology: %w", t.Kind(), err)
	}
	if err := flush(); err != nil {
		return fmt.Errorf("reachac: loading %s topology: %w", t.Kind(), err)
	}
	return nil
}

// attrList converts a node op's attribute map to the facade's Attr list
// in sorted key order, keeping loads deterministic.
func attrList(op generate.Op) []Attr {
	if len(op.Attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(op.Attrs))
	for k := range op.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Attr, len(keys))
	for i, k := range keys {
		out[i] = Attr{Key: k, Val: op.Attrs[k]}
	}
	return out
}
