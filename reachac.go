package reachac

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// UserID identifies a member of the network.
type UserID = graph.NodeID

// Decision is the outcome of an access check (see core.Decision).
type Decision = core.Decision

// Decision effects, re-exported for callers.
const (
	Deny  = core.Deny
	Allow = core.Allow
)

// Attr is one user attribute for AddUser.
type Attr struct {
	Key string
	Val graph.Value
}

// StringAttr builds a string-valued attribute.
func StringAttr(k, v string) Attr { return Attr{k, graph.String(v)} }

// IntAttr builds a numeric attribute from an int.
func IntAttr(k string, v int) Attr { return Attr{k, graph.Int(v)} }

// NumberAttr builds a numeric attribute.
func NumberAttr(k string, v float64) Attr { return Attr{k, graph.Number(v)} }

// BoolAttr builds a boolean attribute.
func BoolAttr(k string, v bool) Attr { return Attr{k, graph.Bool(v)} }

// EngineKind selects the reachability evaluator backing access decisions.
type EngineKind int

// Available engines.
const (
	// Online evaluates each query with a constrained BFS over the graph —
	// no precomputation, O(V+E) per query (the paper's §1 baseline).
	Online EngineKind = iota
	// OnlineDFS is Online with depth-first exploration.
	OnlineDFS
	// OnlineAdaptive is Online with endpoint selection: the search starts
	// from whichever of owner/requester admits fewer seed edges, using the
	// reversed pattern when the requester side is cheaper.
	OnlineAdaptive
	// Closure precomputes per-label adjacency/closure bitsets — fast
	// queries, O(V²)-ish space (the paper's other §1 baseline).
	Closure
	// Index is the paper's cluster-based join index (§3) with the anchored
	// evaluation strategy.
	Index
	// IndexPaperJoin is the index with the literal §3.3 reachability-join
	// strategy (for studying the paper's own evaluation plan).
	IndexPaperJoin
)

func (k EngineKind) String() string {
	switch k {
	case Online:
		return "online-bfs"
	case OnlineDFS:
		return "online-dfs"
	case OnlineAdaptive:
		return "online-adaptive"
	case Closure:
		return "closure"
	case Index:
		return "join-index"
	case IndexPaperJoin:
		return "join-index-paper"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Evaluator answers reachability queries; see core.Evaluator.
type Evaluator = core.Evaluator

// Network is a social graph with privacy policies and an enforcement
// engine. The zero value is not usable; call New. All methods are safe for
// concurrent use.
//
// Reads are snapshot-isolated: access checks (CanAccess, CanAccessAll,
// CheckPath, Audience) run against an immutable engine snapshot — a private
// graph clone, an evaluator built over it, and a frozen policy view —
// published through an atomic pointer, so they proceed concurrently with
// zero lock contention. Mutations (AddUser, Relate, Unrelate, Share, …)
// serialize on an internal lock and bump version counters; the first read
// after a change republishes the snapshot once, off the common hot path.
//
// Republication is incremental whenever possible: mutations are recorded in
// the graph's bounded delta log, and once the previous snapshot's readers
// have drained, its clone is fast-forwarded by replaying the log (O(Δ) in
// the number of mutations) instead of re-cloned from scratch (O(V+E)).
// Evaluators that implement core.IncrementalEvaluator advance in place too;
// the rest are rebuilt over the advanced clone. Use Batch to coalesce many
// mutations into one republication.
type Network struct {
	// mu serializes mutations of the master graph and snapshot
	// publication; readers never take it on the fast path.
	mu   sync.Mutex
	g    *graph.Graph
	kind EngineKind
	// store is the live policy store; an atomic pointer because
	// LoadPolicies replaces it wholesale while readers check staleness
	// lock-free.
	store atomic.Pointer[core.Store]
	// audit is shared by every engine incarnation so the decision trail
	// survives snapshot republication.
	audit *core.AuditLog
	// snap is the published engine snapshot; nil until the first access
	// check or UseEngine call.
	snap atomic.Pointer[snapshot]
	// spare is the most recently retired snapshot whose graph clone is not
	// shared with the published one. Once its readers drain, publication
	// fast-forwards its clone through the graph's delta log (O(Δ)) instead
	// of re-cloning (O(V+E)); see publishLocked. Guarded by mu.
	spare *snapshot
}

// New returns an empty network using the Online engine.
func New() *Network {
	return newNetwork(graph.New(), core.NewStore())
}

func newNetwork(g *graph.Graph, store *core.Store) *Network {
	n := &Network{g: g, kind: Online, audit: core.NewAuditLog(0)}
	n.store.Store(store)
	return n
}

// AddUser adds a member with optional attributes and returns their ID.
func (n *Network) AddUser(name string, attrs ...Attr) (UserID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addUserLocked(name, attrs)
}

// addUserLocked is AddUser's body, shared with Tx. Callers hold n.mu.
func (n *Network) addUserLocked(name string, attrs []Attr) (UserID, error) {
	var a graph.Attrs
	if len(attrs) > 0 {
		a = make(graph.Attrs, len(attrs))
		for _, at := range attrs {
			a[at.Key] = at.Val
		}
	}
	return n.g.AddNode(name, a)
}

// MustAddUser is AddUser panicking on error, for examples and tests.
func (n *Network) MustAddUser(name string, attrs ...Attr) UserID {
	id, err := n.AddUser(name, attrs...)
	if err != nil {
		panic(err)
	}
	return id
}

// UserID resolves a member name.
func (n *Network) UserID(name string) (UserID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NodeByName(name)
}

// UserName returns the name of a member.
func (n *Network) UserName(id UserID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.Node(id).Name
}

// Relate adds a directed typed relationship.
func (n *Network) Relate(from, to UserID, relType string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, err := n.g.AddEdge(from, to, relType)
	return err
}

// RelateMutual adds the relationship in both directions (e.g. friendship on
// symmetric networks), atomically: if the second direction cannot be added
// (say, it already exists), the first is rolled back, so a mutual
// relationship is never left half-applied.
func (n *Network) RelateMutual(a, b UserID, relType string) error {
	return n.Batch(func(tx *Tx) error {
		if err := tx.Relate(a, b, relType); err != nil {
			return err
		}
		return tx.Relate(b, a, relType)
	})
}

// Unrelate removes a relationship; it is an error if absent.
func (n *Network) Unrelate(from, to UserID, relType string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.g.LookupLabel(relType)
	if !ok {
		return fmt.Errorf("reachac: unknown relationship type %q", relType)
	}
	e := n.g.FindEdge(from, to, l)
	if e == graph.InvalidEdge {
		return fmt.Errorf("reachac: no %s relationship %d -> %d", relType, from, to)
	}
	return n.g.RemoveEdge(e)
}

// NumUsers returns the member count.
func (n *Network) NumUsers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NumNodes()
}

// NumRelationships returns the live relationship count.
func (n *Network) NumRelationships() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NumEdges()
}

// Save serializes the social graph (not the policies) to w.
func (n *Network) Save(w io.Writer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.Write(w)
}

// Load reads a social graph serialized by Save into a fresh network.
func Load(r io.Reader) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return newNetwork(g, core.NewStore()), nil
}

// FromGraph wraps an existing social graph (used by the command-line tools
// and benchmarks; the graph must not be mutated externally afterwards).
func FromGraph(g *graph.Graph) *Network {
	return newNetwork(g, core.NewStore())
}

// Graph exposes the underlying master graph for inspection. Mutating it
// directly is detected via its version counter (the next access check
// republishes the engine snapshot), but is not safe concurrently with other
// Network calls; prefer the Network mutators.
func (n *Network) Graph() *graph.Graph { return n.g }

// Store exposes the live policy store.
func (n *Network) Store() *core.Store { return n.store.Load() }

// UseEngine selects the evaluator kind for subsequent access checks. The
// engine snapshot is (re)built and published immediately; an error leaves
// the previous engine in place.
func (n *Network) UseEngine(kind EngineKind) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	prev := n.kind
	n.kind = kind
	if _, err := n.publishLocked(); err != nil {
		n.kind = prev
		return err
	}
	return nil
}

// EngineKind reports the selected engine.
func (n *Network) EngineKind() EngineKind {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.kind
}

// Share registers resource to owner (if new) and attaches one access rule
// whose conditions are the given path expressions, ALL of which a requester
// must satisfy. Calling Share again on the same resource adds an
// alternative rule (any valid rule grants access). It returns the rule ID.
func (n *Network) Share(resource string, owner UserID, paths ...string) (string, error) {
	if len(paths) == 0 {
		return "", fmt.Errorf("reachac: Share needs at least one path expression")
	}
	conds := make([]core.Condition, len(paths))
	for i, s := range paths {
		p, err := pathexpr.Parse(s)
		if err != nil {
			return "", err
		}
		conds[i] = core.Condition{Path: p}
	}
	// Load the store once: registering in one store and adding the rule to
	// another (swapped in by a concurrent LoadPolicies) would orphan the rule.
	store := n.store.Load()
	if err := store.Register(core.ResourceID(resource), owner); err != nil {
		return "", err
	}
	rule := &core.Rule{Resource: core.ResourceID(resource), Owner: owner, Conditions: conds}
	if err := store.AddRule(rule); err != nil {
		return "", err
	}
	return rule.ID, nil
}

// Revoke removes a rule from a resource; it reports whether it existed.
func (n *Network) Revoke(resource, ruleID string) bool {
	return n.store.Load().RemoveRule(core.ResourceID(resource), ruleID)
}

// CanAccess decides whether requester may access resource under the current
// policies, using the selected engine. The check runs against the current
// engine snapshot (republished first if the graph or policies changed), so
// concurrent checks never contend on a lock. Repeated checks of the same
// (resource, requester) pair are served from the snapshot's decision cache
// and appear once in the audit trail.
func (n *Network) CanAccess(resource string, requester UserID) (Decision, error) {
	s, err := n.snapshot()
	if err != nil {
		return Decision{}, err
	}
	defer s.release()
	return s.decide(core.ResourceID(resource), requester)
}

// CheckPath answers a raw reachability question: does a path matching expr
// lead from owner to requester?
func (n *Network) CheckPath(owner, requester UserID, expr string) (bool, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return false, err
	}
	s, err := n.snapshot()
	if err != nil {
		return false, err
	}
	defer s.release()
	return s.eval.Reachable(owner, requester, p)
}

// Audit returns the retained decision trail. The trail is shared across
// engine snapshots, so it survives graph mutations and engine switches.
func (n *Network) Audit() []Decision {
	return n.audit.Decisions()
}

// ParsePath validates a path expression, returning its canonical form.
func ParsePath(expr string) (string, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// SavePolicies serializes the policy store (resources, owners, rules) to w.
// Together with Save this persists the whole network state.
func (n *Network) SavePolicies(w io.Writer) error {
	return n.store.Load().Write(w)
}

// LoadPolicies replaces the network's policy store with one read from r.
// Rule owners are validated against the current graph. The engine snapshot
// is republished on the next access check.
func (n *Network) LoadPolicies(r io.Reader) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	store, err := core.ReadStore(r, n.g)
	if err != nil {
		return err
	}
	n.store.Store(store)
	return nil
}

// Audience enumerates every user granted access to resource by its current
// rules (excluding the owner, who always has access). Like CanAccess it
// runs against the current engine snapshot, concurrently with other reads.
func (n *Network) Audience(resource string) ([]UserID, error) {
	s, err := n.snapshot()
	if err != nil {
		return nil, err
	}
	defer s.release()
	return s.store.Audience(core.ResourceID(resource), s.g, s.eval)
}
