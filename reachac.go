package reachac

import (
	"fmt"
	"io"
	"sync"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
	"reachac/internal/tclosure"
)

// UserID identifies a member of the network.
type UserID = graph.NodeID

// Decision is the outcome of an access check (see core.Decision).
type Decision = core.Decision

// Decision effects, re-exported for callers.
const (
	Deny  = core.Deny
	Allow = core.Allow
)

// Attr is one user attribute for AddUser.
type Attr struct {
	Key string
	Val graph.Value
}

// StringAttr builds a string-valued attribute.
func StringAttr(k, v string) Attr { return Attr{k, graph.String(v)} }

// IntAttr builds a numeric attribute from an int.
func IntAttr(k string, v int) Attr { return Attr{k, graph.Int(v)} }

// NumberAttr builds a numeric attribute.
func NumberAttr(k string, v float64) Attr { return Attr{k, graph.Number(v)} }

// BoolAttr builds a boolean attribute.
func BoolAttr(k string, v bool) Attr { return Attr{k, graph.Bool(v)} }

// EngineKind selects the reachability evaluator backing access decisions.
type EngineKind int

// Available engines.
const (
	// Online evaluates each query with a constrained BFS over the graph —
	// no precomputation, O(V+E) per query (the paper's §1 baseline).
	Online EngineKind = iota
	// OnlineDFS is Online with depth-first exploration.
	OnlineDFS
	// OnlineAdaptive is Online with endpoint selection: the search starts
	// from whichever of owner/requester admits fewer seed edges, using the
	// reversed pattern when the requester side is cheaper.
	OnlineAdaptive
	// Closure precomputes per-label adjacency/closure bitsets — fast
	// queries, O(V²)-ish space (the paper's other §1 baseline).
	Closure
	// Index is the paper's cluster-based join index (§3) with the anchored
	// evaluation strategy.
	Index
	// IndexPaperJoin is the index with the literal §3.3 reachability-join
	// strategy (for studying the paper's own evaluation plan).
	IndexPaperJoin
)

func (k EngineKind) String() string {
	switch k {
	case Online:
		return "online-bfs"
	case OnlineDFS:
		return "online-dfs"
	case OnlineAdaptive:
		return "online-adaptive"
	case Closure:
		return "closure"
	case Index:
		return "join-index"
	case IndexPaperJoin:
		return "join-index-paper"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Evaluator answers reachability queries; see core.Evaluator.
type Evaluator = core.Evaluator

// Network is a social graph with privacy policies and an enforcement
// engine. The zero value is not usable; call New. All methods are safe for
// concurrent use, except that mutations concurrent with access checks
// serialize on an internal lock.
type Network struct {
	mu     sync.Mutex
	g      *graph.Graph
	store  *core.Store
	kind   EngineKind
	eval   Evaluator
	engine *core.Engine
	// built is the graph.Version the current evaluator was built at;
	// evaluators are rebuilt lazily when the graph has mutated since (also
	// catching mutations made directly through the Graph() handle).
	built uint64
}

// New returns an empty network using the Online engine.
func New() *Network {
	n := &Network{g: graph.New(), store: core.NewStore(), kind: Online}
	return n
}

// AddUser adds a member with optional attributes and returns their ID.
func (n *Network) AddUser(name string, attrs ...Attr) (UserID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var a graph.Attrs
	if len(attrs) > 0 {
		a = make(graph.Attrs, len(attrs))
		for _, at := range attrs {
			a[at.Key] = at.Val
		}
	}
	return n.g.AddNode(name, a)
}

// MustAddUser is AddUser panicking on error, for examples and tests.
func (n *Network) MustAddUser(name string, attrs ...Attr) UserID {
	id, err := n.AddUser(name, attrs...)
	if err != nil {
		panic(err)
	}
	return id
}

// UserID resolves a member name.
func (n *Network) UserID(name string) (UserID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NodeByName(name)
}

// UserName returns the name of a member.
func (n *Network) UserName(id UserID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.Node(id).Name
}

// Relate adds a directed typed relationship.
func (n *Network) Relate(from, to UserID, relType string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, err := n.g.AddEdge(from, to, relType)
	return err
}

// RelateMutual adds the relationship in both directions (e.g. friendship on
// symmetric networks).
func (n *Network) RelateMutual(a, b UserID, relType string) error {
	if err := n.Relate(a, b, relType); err != nil {
		return err
	}
	return n.Relate(b, a, relType)
}

// Unrelate removes a relationship; it is an error if absent.
func (n *Network) Unrelate(from, to UserID, relType string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.g.LookupLabel(relType)
	if !ok {
		return fmt.Errorf("reachac: unknown relationship type %q", relType)
	}
	e := n.g.FindEdge(from, to, l)
	if e == graph.InvalidEdge {
		return fmt.Errorf("reachac: no %s relationship %d -> %d", relType, from, to)
	}
	return n.g.RemoveEdge(e)
}

// NumUsers returns the member count.
func (n *Network) NumUsers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NumNodes()
}

// NumRelationships returns the live relationship count.
func (n *Network) NumRelationships() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NumEdges()
}

// Save serializes the social graph (not the policies) to w.
func (n *Network) Save(w io.Writer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.Write(w)
}

// Load reads a social graph serialized by Save into a fresh network.
func Load(r io.Reader) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Network{g: g, store: core.NewStore(), kind: Online}, nil
}

// FromGraph wraps an existing social graph (used by the command-line tools
// and benchmarks; the graph must not be mutated externally afterwards).
func FromGraph(g *graph.Graph) *Network {
	return &Network{g: g, store: core.NewStore(), kind: Online}
}

// Graph exposes the underlying graph for read-only inspection.
func (n *Network) Graph() *graph.Graph { return n.g }

// Store exposes the policy store.
func (n *Network) Store() *core.Store { return n.store }

// UseEngine selects the evaluator kind for subsequent access checks. Index
// engines are (re)built immediately; an error leaves the previous engine in
// place.
func (n *Network) UseEngine(kind EngineKind) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.kind = kind
	n.eval = nil
	n.engine = nil
	return n.ensureEngineLocked()
}

// EngineKind reports the selected engine.
func (n *Network) EngineKind() EngineKind {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.kind
}

func (n *Network) ensureEngineLocked() error {
	if n.eval != nil && n.built == n.g.Version() {
		return nil
	}
	var eval Evaluator
	switch n.kind {
	case Online:
		eval = search.New(n.g)
	case OnlineDFS:
		eval = search.NewDFS(n.g)
	case OnlineAdaptive:
		eval = search.NewAdaptive(n.g)
	case Closure:
		eval = tclosure.New(n.g)
	case Index:
		idx, err := joinindex.Build(n.g, joinindex.Options{})
		if err != nil {
			return fmt.Errorf("reachac: building index: %w", err)
		}
		eval = idx
	case IndexPaperJoin:
		idx, err := joinindex.Build(n.g, joinindex.Options{Strategy: joinindex.EvalPaperJoin})
		if err != nil {
			return fmt.Errorf("reachac: building index: %w", err)
		}
		eval = idx
	default:
		return fmt.Errorf("reachac: unknown engine kind %d", int(n.kind))
	}
	n.eval = eval
	n.built = n.g.Version()
	n.engine = core.NewEngine(n.store, eval, 0)
	return nil
}

// Share registers resource to owner (if new) and attaches one access rule
// whose conditions are the given path expressions, ALL of which a requester
// must satisfy. Calling Share again on the same resource adds an
// alternative rule (any valid rule grants access). It returns the rule ID.
func (n *Network) Share(resource string, owner UserID, paths ...string) (string, error) {
	if len(paths) == 0 {
		return "", fmt.Errorf("reachac: Share needs at least one path expression")
	}
	conds := make([]core.Condition, len(paths))
	for i, s := range paths {
		p, err := pathexpr.Parse(s)
		if err != nil {
			return "", err
		}
		conds[i] = core.Condition{Path: p}
	}
	if err := n.store.Register(core.ResourceID(resource), owner); err != nil {
		return "", err
	}
	rule := &core.Rule{Resource: core.ResourceID(resource), Owner: owner, Conditions: conds}
	if err := n.store.AddRule(rule); err != nil {
		return "", err
	}
	return rule.ID, nil
}

// Revoke removes a rule from a resource; it reports whether it existed.
func (n *Network) Revoke(resource, ruleID string) bool {
	return n.store.RemoveRule(core.ResourceID(resource), ruleID)
}

// CanAccess decides whether requester may access resource under the current
// policies, using the selected engine (rebuilding it if the graph changed).
func (n *Network) CanAccess(resource string, requester UserID) (Decision, error) {
	n.mu.Lock()
	if err := n.ensureEngineLocked(); err != nil {
		n.mu.Unlock()
		return Decision{}, err
	}
	engine := n.engine
	n.mu.Unlock()
	return engine.Decide(core.ResourceID(resource), requester)
}

// CheckPath answers a raw reachability question: does a path matching expr
// lead from owner to requester?
func (n *Network) CheckPath(owner, requester UserID, expr string) (bool, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return false, err
	}
	n.mu.Lock()
	if err := n.ensureEngineLocked(); err != nil {
		n.mu.Unlock()
		return false, err
	}
	eval := n.eval
	n.mu.Unlock()
	return eval.Reachable(owner, requester, p)
}

// Audit returns the retained decision trail of the current engine.
func (n *Network) Audit() []Decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.engine == nil {
		return nil
	}
	return n.engine.Audit()
}

// ParsePath validates a path expression, returning its canonical form.
func ParsePath(expr string) (string, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// SavePolicies serializes the policy store (resources, owners, rules) to w.
// Together with Save this persists the whole network state.
func (n *Network) SavePolicies(w io.Writer) error {
	return n.store.Write(w)
}

// LoadPolicies replaces the network's policy store with one read from r.
// Rule owners are validated against the current graph.
func (n *Network) LoadPolicies(r io.Reader) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	store, err := core.ReadStore(r, n.g)
	if err != nil {
		return err
	}
	n.store = store
	n.engine = nil // rebuilt against the new store on next access
	n.eval = nil
	return nil
}

// Audience enumerates every user granted access to resource by its current
// rules (excluding the owner, who always has access).
func (n *Network) Audience(resource string) ([]UserID, error) {
	n.mu.Lock()
	if err := n.ensureEngineLocked(); err != nil {
		n.mu.Unlock()
		return nil, err
	}
	eval := n.eval
	n.mu.Unlock()
	return n.store.Audience(core.ResourceID(resource), n.g, eval)
}
