package reachac

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
	"reachac/internal/planner"
	"reachac/internal/replica"
	"reachac/internal/wal"
)

// UserID identifies a member of the network.
type UserID = graph.NodeID

// Decision is the outcome of an access check (see core.Decision).
type Decision = core.Decision

// Decision effects, re-exported for callers.
const (
	Deny  = core.Deny
	Allow = core.Allow
)

// Attr is one user attribute for AddUser.
type Attr struct {
	Key string
	Val graph.Value
}

// StringAttr builds a string-valued attribute.
func StringAttr(k, v string) Attr { return Attr{k, graph.String(v)} }

// IntAttr builds a numeric attribute from an int.
func IntAttr(k string, v int) Attr { return Attr{k, graph.Int(v)} }

// NumberAttr builds a numeric attribute.
func NumberAttr(k string, v float64) Attr { return Attr{k, graph.Number(v)} }

// BoolAttr builds a boolean attribute.
func BoolAttr(k string, v bool) Attr { return Attr{k, graph.Bool(v)} }

// EngineKind selects the reachability evaluator backing access decisions.
type EngineKind int

// Available engines.
const (
	// Online evaluates each query with a constrained BFS over the graph —
	// no precomputation, O(V+E) per query (the paper's §1 baseline).
	Online EngineKind = iota
	// OnlineDFS is Online with depth-first exploration.
	OnlineDFS
	// OnlineAdaptive is Online with endpoint selection: the search starts
	// from whichever of owner/requester admits fewer seed edges, using the
	// reversed pattern when the requester side is cheaper.
	OnlineAdaptive
	// Closure precomputes per-label adjacency/closure bitsets — fast
	// queries, O(V²)-ish space (the paper's other §1 baseline).
	Closure
	// Index is the paper's cluster-based join index (§3) with the anchored
	// evaluation strategy.
	Index
	// IndexPaperJoin is the index with the literal §3.3 reachability-join
	// strategy (for studying the paper's own evaluation plan).
	IndexPaperJoin
)

func (k EngineKind) String() string {
	switch k {
	case Online:
		return "online-bfs"
	case OnlineDFS:
		return "online-dfs"
	case OnlineAdaptive:
		return "online-adaptive"
	case Closure:
		return "closure"
	case Index:
		return "join-index"
	case IndexPaperJoin:
		return "join-index-paper"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Evaluator answers reachability queries; see core.Evaluator.
type Evaluator = core.Evaluator

// Network is a social graph with privacy policies and an enforcement
// engine. The zero value is not usable; call New. All methods are safe for
// concurrent use.
//
// Reads are snapshot-isolated: access checks (CanAccess, CanAccessAll,
// CheckPath, Audience) run against an immutable engine snapshot — a private
// graph clone, an evaluator built over it, and a frozen policy view —
// published through an atomic pointer, so they proceed concurrently with
// zero lock contention. Mutations (AddUser, Relate, Unrelate, Share, …)
// serialize on an internal lock and bump version counters; the first read
// after a change republishes the snapshot once, off the common hot path.
//
// Republication is incremental whenever possible: mutations are recorded in
// the graph's bounded delta log, and once the previous snapshot's readers
// have drained, its clone is fast-forwarded by replaying the log (O(Δ) in
// the number of mutations) instead of re-cloned from scratch (O(V+E)).
// Evaluators that implement core.IncrementalEvaluator advance in place too;
// the rest are rebuilt over the advanced clone. Use Batch to coalesce many
// mutations into one republication.
//
// A network created by Open is durable: every committed mutation batch is
// appended to a write-ahead log (one atomic record group, fsynced per the
// sync policy) before it is acknowledged, a size-triggered background
// checkpoint compacts the log, and Open recovers exactly the acknowledged
// prefix after a crash. See durable.go and internal/wal.
type Network struct {
	// mu serializes mutations of the master graph and snapshot
	// publication; readers never take it on the fast path.
	mu   sync.Mutex
	g    *graph.Graph
	kind EngineKind
	// store is the live policy store; an atomic pointer because
	// LoadPolicies replaces it wholesale while readers check staleness
	// lock-free.
	store atomic.Pointer[core.Store]
	// audit is shared by every engine incarnation so the decision trail
	// survives snapshot republication.
	audit *core.AuditLog
	// snap is the published engine snapshot; nil until the first access
	// check or UseEngine call.
	snap atomic.Pointer[snapshot]
	// spare is the most recently retired snapshot whose graph clone is not
	// shared with the published one. Once its readers drain, publication
	// fast-forwards its clone through the graph's delta log (O(Δ)) instead
	// of re-cloning (O(V+E)); see publishLocked. Guarded by mu.
	spare *snapshot

	// wal, when non-nil, is the durability log a network created by Open
	// appends every committed mutation batch to before acknowledging it.
	// walErr poisons the network read-only after an append failure and
	// closed marks Close; both are guarded by mu. See durable.go.
	wal      *wal.Log
	walErr   error
	closed   bool
	recovery RecoveryInfo
	// ckptEvery is the segment size triggering a background checkpoint;
	// ckptActive admits one checkpointer at a time, ckptWG lets Close and
	// Checkpoint wait for it, and ckptErr (guarded by ckptMu, not mu)
	// retains its first failure.
	ckptEvery  int64
	ckptActive atomic.Bool
	ckptWG     sync.WaitGroup
	ckptMu     sync.Mutex
	ckptErr    error

	// replSource serves this leader's WAL to followers (nil on non-durable
	// networks); follower, when non-nil, marks the network a read replica —
	// every mutation is ErrReadOnly and state advances only through
	// applyReplicated. See follow.go and internal/replica.
	replSource *replica.Source
	follower   *replica.Follower
	// fencedEpoch, when non-zero, is a HIGHER leadership epoch this leader
	// observed through its replication endpoints: a follower was promoted
	// elsewhere, so this leader is superseded and fences itself — every
	// further mutation is ErrReadOnly, before the histories can diverge.
	// See Network.ObserveEpoch in durable.go.
	fencedEpoch atomic.Uint64

	// planner accumulates routing statistics and owns the decision-cache
	// counters; it lives as long as the network, surviving snapshot
	// republication. route enables per-query cost-based routing and
	// autoMigrate lets publication apply the planner's whole-network
	// engine recommendations (both set by WithPlanner; the decision cache
	// itself is always on).
	planner     *planner.Planner
	route       bool
	autoMigrate bool

	// ctr tallies operations for Stats.
	ctr counters
}

// New returns an empty network using the Online engine. Options are the
// same as Open's; WAL-specific ones (sync policy, checkpoint cadence) have
// no effect on a non-durable network.
func New(opts ...Option) *Network {
	return newNetwork(graph.New(), core.NewStore()).applyOptions(opts)
}

func newNetwork(g *graph.Graph, store *core.Store) *Network {
	n := &Network{g: g, kind: Online, audit: core.NewAuditLog(0), planner: planner.New()}
	n.store.Store(store)
	return n
}

// applyOptions folds constructor options into a fresh (not yet shared)
// network.
func (n *Network) applyOptions(opts []Option) *Network {
	cfg := openConfig{kind: n.kind}
	for _, o := range opts {
		o(&cfg)
	}
	n.kind = cfg.kind
	n.route = cfg.route
	n.autoMigrate = cfg.planner.AutoMigrate
	return n
}

// AddUser adds a member with optional attributes and returns their ID. On a
// durable network the addition is logged and fsynced before it returns.
func (n *Network) AddUser(name string, attrs ...Attr) (UserID, error) {
	var id UserID
	err := n.Batch(func(tx *Tx) error {
		var e error
		id, e = tx.AddUser(name, attrs...)
		return e
	})
	return id, err
}

// addUserLocked is AddUser's body, shared with Tx. Callers hold n.mu.
func (n *Network) addUserLocked(name string, attrs []Attr) (UserID, error) {
	var a graph.Attrs
	if len(attrs) > 0 {
		a = make(graph.Attrs, len(attrs))
		for _, at := range attrs {
			a[at.Key] = at.Val
		}
	}
	id, err := n.g.AddNode(name, a)
	if err != nil {
		return id, fmt.Errorf("reachac: user %q: %w", name, ErrDuplicateUser)
	}
	return id, nil
}

// MustAddUser is AddUser panicking on error, for examples and tests.
func (n *Network) MustAddUser(name string, attrs ...Attr) UserID {
	id, err := n.AddUser(name, attrs...)
	if err != nil {
		panic(err)
	}
	return id
}

// UserID resolves a member name.
func (n *Network) UserID(name string) (UserID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NodeByName(name)
}

// UserName returns the name of a member.
func (n *Network) UserName(id UserID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.Node(id).Name
}

// Relate adds a directed typed relationship.
func (n *Network) Relate(from, to UserID, relType string) error {
	return n.Batch(func(tx *Tx) error { return tx.Relate(from, to, relType) })
}

// RelateMutual adds the relationship in both directions (e.g. friendship on
// symmetric networks), atomically: if the second direction cannot be added
// (say, it already exists), the first is rolled back, so a mutual
// relationship is never left half-applied.
func (n *Network) RelateMutual(a, b UserID, relType string) error {
	return n.Batch(func(tx *Tx) error {
		if err := tx.Relate(a, b, relType); err != nil {
			return err
		}
		return tx.Relate(b, a, relType)
	})
}

// Unrelate removes a relationship; it is an error if absent.
func (n *Network) Unrelate(from, to UserID, relType string) error {
	return n.Batch(func(tx *Tx) error { return tx.Unrelate(from, to, relType) })
}

// NumUsers returns the member count.
func (n *Network) NumUsers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NumNodes()
}

// NumRelationships returns the live relationship count.
func (n *Network) NumRelationships() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.NumEdges()
}

// Save serializes the social graph ONLY — policies are deliberately not
// included, so a graph file stays exchangeable with gengraph/acquery. Pair
// it with SavePolicies, or use SaveState to persist both in one stream.
func (n *Network) Save(w io.Writer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.g.Write(w)
}

// Load reads a social graph serialized by Save into a fresh network. The
// policy store starts EMPTY: Save/Load round-trip the graph half of the
// state only. Restore policies with LoadPolicies, or persist and restore
// both halves together with SaveState/LoadState.
func Load(r io.Reader) (*Network, error) {
	g, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return newNetwork(g, core.NewStore()), nil
}

// SaveState serializes the whole network state — graph AND policies — as a
// single stream in the WAL checkpoint format, a consistent point-in-time
// snapshot even while readers run.
func (n *Network) SaveState(w io.Writer) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return wal.WriteState(w, n.g, n.store.Load())
}

// LoadState reads a stream written by SaveState into a fresh (non-durable)
// network, graph and policies both.
func LoadState(r io.Reader) (*Network, error) {
	g, s, err := wal.ReadState(r)
	if err != nil {
		return nil, err
	}
	return newNetwork(g, s), nil
}

// FromGraph wraps an existing social graph (used by the command-line tools
// and benchmarks; the graph must not be mutated externally afterwards).
// Options are the same as New's.
func FromGraph(g *graph.Graph, opts ...Option) *Network {
	return newNetwork(g, core.NewStore()).applyOptions(opts)
}

// Graph exposes the underlying master graph for inspection. Mutating it
// directly is detected via its version counter (the next access check
// republishes the engine snapshot), but is not safe concurrently with other
// Network calls; prefer the Network mutators.
func (n *Network) Graph() *graph.Graph { return n.g }

// Store exposes the live policy store.
func (n *Network) Store() *core.Store { return n.store.Load() }

// UseEngine selects the evaluator kind for subsequent access checks. The
// engine snapshot is (re)built and published immediately; an error leaves
// the previous engine in place.
func (n *Network) UseEngine(kind EngineKind) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	prev := n.kind
	n.kind = kind
	if _, err := n.publishLocked(); err != nil {
		n.kind = prev
		return err
	}
	return nil
}

// EngineKind reports the selected engine.
func (n *Network) EngineKind() EngineKind {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.kind
}

// Share registers resource to owner (if new) and attaches one access rule
// whose conditions are the given path expressions, ALL of which a requester
// must satisfy. Calling Share again on the same resource adds an
// alternative rule (any valid rule grants access). It returns the rule ID.
func (n *Network) Share(resource string, owner UserID, paths ...string) (string, error) {
	var id string
	err := n.Batch(func(tx *Tx) error {
		var e error
		id, e = tx.Share(resource, owner, paths...)
		return e
	})
	return id, err
}

// shareLocked is Share's body, shared with Tx. It returns the assigned rule
// ID and the canonical condition strings (the WAL record payload). Callers
// hold n.mu.
func (n *Network) shareLocked(resource string, owner UserID, paths []string) (string, []string, error) {
	if len(paths) == 0 {
		return "", nil, fmt.Errorf("reachac: Share needs at least one path expression")
	}
	if !n.g.ValidNode(owner) {
		return "", nil, fmt.Errorf("reachac: share of %q by user %d: %w", resource, owner, ErrUnknownUser)
	}
	conds := make([]core.Condition, len(paths))
	canonical := make([]string, len(paths))
	for i, s := range paths {
		p, err := pathexpr.Parse(s)
		if err != nil {
			return "", nil, err
		}
		conds[i] = core.Condition{Path: p}
		canonical[i] = p.String()
	}
	// Load the store once: registering in one store and adding the rule to
	// another (swapped in by a concurrent LoadPolicies) would orphan the rule.
	store := n.store.Load()
	if cur, ok := store.Owner(core.ResourceID(resource)); ok && cur != owner {
		return "", nil, fmt.Errorf("reachac: share of %q by user %d (owned by %d): %w",
			resource, owner, cur, ErrResourceOwned)
	}
	if err := store.Register(core.ResourceID(resource), owner); err != nil {
		return "", nil, err
	}
	rule := &core.Rule{Resource: core.ResourceID(resource), Owner: owner, Conditions: conds}
	if err := store.AddRule(rule); err != nil {
		return "", nil, err
	}
	return rule.ID, canonical, nil
}

// Revoke removes a rule from a resource; it reports whether it existed.
// false also covers the failure modes of a durable network — closed,
// poisoned, or a failed WAL append (in which case the removal was rolled
// back and the rule still grants access); callers that must distinguish
// should use Batch and Tx.Revoke, whose commit error is returned.
func (n *Network) Revoke(resource, ruleID string) bool {
	var ok bool
	if err := n.Batch(func(tx *Tx) error {
		ok = tx.Revoke(resource, ruleID)
		return nil
	}); err != nil {
		// The commit failed and the removal was rolled back.
		return false
	}
	return ok
}

// CanAccess decides whether requester may access resource under the current
// policies, using the selected engine. The check runs against the current
// engine snapshot (republished first if the graph or policies changed), so
// concurrent checks never contend on a lock. Repeated checks of the same
// (resource, requester) pair are served from the snapshot's decision cache
// and appear once in the audit trail.
func (n *Network) CanAccess(resource string, requester UserID) (Decision, error) {
	s, err := n.snapshot()
	if err != nil {
		return Decision{}, err
	}
	defer s.release()
	n.ctr.checks.Add(1)
	return s.decide(core.ResourceID(resource), requester)
}

// CheckPath answers a raw reachability question: does a path matching expr
// lead from owner to requester?
func (n *Network) CheckPath(owner, requester UserID, expr string) (bool, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return false, err
	}
	s, err := n.snapshot()
	if err != nil {
		return false, err
	}
	defer s.release()
	n.ctr.checks.Add(1)
	return s.reval.Reachable(owner, requester, p)
}

// Audit returns the retained decision trail. The trail is shared across
// engine snapshots, so it survives graph mutations and engine switches.
func (n *Network) Audit() []Decision {
	return n.audit.Decisions()
}

// ParsePath validates a path expression, returning its canonical form.
func ParsePath(expr string) (string, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// SavePolicies serializes the policy store (resources, owners, rules) to w.
// Together with Save this persists the whole network state.
func (n *Network) SavePolicies(w io.Writer) error {
	return n.store.Load().Write(w)
}

// LoadPolicies replaces the network's policy store with one read from r.
// Rule owners are validated against the current graph. The engine snapshot
// is republished on the next access check. On a durable network the
// replacement is logged (as a whole-store record) before it takes effect.
func (n *Network) LoadPolicies(r io.Reader) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.writeGuardLocked(); err != nil {
		return err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	store, err := core.ReadStore(bytes.NewReader(data), n.g)
	if err != nil {
		return err
	}
	// Swap before committing: commitLocked may trigger a checkpoint, and
	// that checkpoint must snapshot the NEW store — the record group it
	// supersedes includes this very reset. On append failure the swap is
	// undone (the network is poisoned read-only regardless).
	old := n.store.Load()
	n.store.Store(store)
	if err := n.commitLocked([]wal.Op{wal.PolicyResetOp(data)}); err != nil {
		n.store.Store(old)
		return err
	}
	return nil
}

// Audience enumerates every user granted access to resource by its current
// rules (excluding the owner, who always has access). Like CanAccess it
// runs against the current engine snapshot, concurrently with other reads.
// An unregistered resource is ErrUnknownResource.
func (n *Network) Audience(resource string) ([]UserID, error) {
	s, err := n.snapshot()
	if err != nil {
		return nil, err
	}
	defer s.release()
	n.ctr.audiences.Add(1)
	return s.audience(resource)
}

// PathAudience enumerates every user a path expression starting at owner
// reaches — the audience a Share with that single condition would grant.
// Like the other reads it runs against the current engine snapshot.
func (n *Network) PathAudience(owner UserID, expr string) ([]UserID, error) {
	s, err := n.snapshot()
	if err != nil {
		return nil, err
	}
	defer s.release()
	n.ctr.audiences.Add(1)
	return s.pathAudience(owner, expr)
}
