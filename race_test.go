package reachac

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentStress races mutators (Relate/Unrelate/Share/Revoke)
// against snapshot-isolated readers (CanAccess/CanAccessAll/CheckPath/
// Audience) across every engine kind. It asserts no errors and, run under
// -race, the absence of data races in the snapshot publication protocol and
// the evaluators' query paths.
func TestConcurrentStress(t *testing.T) {
	kinds := []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			n := New()
			const members = 40
			ids := make([]UserID, members)
			for i := range ids {
				ids[i] = n.MustAddUser(fmt.Sprintf("u%02d", i))
			}
			// A ring of friendships plus some colleague chords, so the
			// policies below have both hits and misses.
			for i := range ids {
				if err := n.Relate(ids[i], ids[(i+1)%members], "friend"); err != nil {
					t.Fatal(err)
				}
				if i%3 == 0 {
					if err := n.Relate(ids[i], ids[(i+7)%members], "colleague"); err != nil {
						t.Fatal(err)
					}
				}
			}
			if _, err := n.Share("album", ids[0], "friend+[1,3]"); err != nil {
				t.Fatal(err)
			}
			if err := n.UseEngine(kind); err != nil {
				t.Fatal(err)
			}

			// Index engines pay a full rebuild per published snapshot, and
			// the race detector multiplies that cost; keep their iteration
			// budget small so the test stays fast while still interleaving
			// plenty of publications with reads.
			readers, reads, mutations := 4, 300, 150
			if kind == Index || kind == IndexPaperJoin {
				reads, mutations = 40, 20
			}
			errc := make(chan error, readers+3)
			var wg sync.WaitGroup

			// Edge mutator: flips one chord on and off.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < mutations; i++ {
					if err := n.Relate(ids[5], ids[20], "friend"); err != nil {
						errc <- err
						return
					}
					if err := n.Unrelate(ids[5], ids[20], "friend"); err != nil {
						errc <- err
						return
					}
				}
			}()
			// Policy mutator: adds and revokes an alternative rule.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < mutations; i++ {
					rid, err := n.Share("album", ids[0], "colleague+[1,2]")
					if err != nil {
						errc <- err
						return
					}
					if !n.Revoke("album", rid) {
						errc <- fmt.Errorf("rule %s vanished before revoke", rid)
						return
					}
				}
			}()
			// Batch mutator: coalesced edge flips racing the readers, so the
			// delta-advance steal of a retired clone runs under the race
			// detector against in-flight snapshot readers.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < mutations; i++ {
					err := n.Batch(func(tx *Tx) error {
						if err := tx.Relate(ids[10], ids[25], "friend"); err != nil {
							return err
						}
						if err := tx.Relate(ids[11], ids[26], "friend"); err != nil {
							return err
						}
						if err := tx.Unrelate(ids[10], ids[25], "friend"); err != nil {
							return err
						}
						return tx.Unrelate(ids[11], ids[26], "friend")
					})
					if err != nil {
						errc <- err
						return
					}
				}
			}()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					for i := 0; i < reads; i++ {
						req := ids[(seed*31+i)%members]
						if _, err := n.CanAccess("album", req); err != nil {
							errc <- err
							return
						}
						switch i % 16 {
						case 3:
							if _, err := n.CanAccessAll("album", ids[:8]); err != nil {
								errc <- err
								return
							}
						case 7:
							if _, err := n.CheckPath(ids[0], req, "friend+[1,2]"); err != nil {
								errc <- err
								return
							}
						case 11:
							if _, err := n.Audience("album"); err != nil {
								errc <- err
								return
							}
						case 15:
							n.Audit()
						}
					}
				}(r)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// The graph must be back in its pre-race shape, and decisions
			// must still be exact on the settled state.
			chords := (members + 2) / 3 // one colleague chord per i%3==0
			if got := n.NumRelationships(); got != members+chords {
				t.Fatalf("relationships = %d after stress, want %d", got, members+chords)
			}
			d, err := n.CanAccess("album", ids[1])
			if err != nil {
				t.Fatal(err)
			}
			if d.Effect != Allow {
				t.Fatalf("direct friend denied after stress: %+v", d)
			}
			d, err = n.CanAccess("album", ids[members/2])
			if err != nil {
				t.Fatal(err)
			}
			if d.Effect != Deny {
				t.Fatalf("distant member allowed after stress: %+v", d)
			}
		})
	}
}

// TestSnapshotIsolation pins the semantics the concurrency model promises:
// a batch runs against one snapshot even if a mutation lands mid-batch, and
// new snapshots observe mutations immediately.
func TestSnapshotIsolation(t *testing.T) {
	n := New()
	alice := n.MustAddUser("alice")
	bob := n.MustAddUser("bob")
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Share("r", alice, "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	d, err := n.CanAccess("r", bob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Effect != Allow {
		t.Fatalf("friend denied: %+v", d)
	}
	// Unfriending must be visible to the very next check (fresh snapshot).
	if err := n.Unrelate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if d, _ = n.CanAccess("r", bob); d.Effect != Deny {
		t.Fatalf("unfriended requester still allowed: %+v", d)
	}
	// And re-friending likewise.
	if err := n.Relate(alice, bob, "friend"); err != nil {
		t.Fatal(err)
	}
	if d, _ = n.CanAccess("r", bob); d.Effect != Allow {
		t.Fatalf("re-friended requester denied: %+v", d)
	}
}

// TestCanAccessAll checks the batch API against the scalar one.
func TestCanAccessAll(t *testing.T) {
	n := New()
	const members = 64
	ids := make([]UserID, members)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("m%02d", i))
	}
	for i := 1; i < members; i++ {
		// Members 1..15 are direct friends of member 0.
		if i < 16 {
			if err := n.Relate(ids[0], ids[i], "friend"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := n.Share("wall", ids[0], "friend+[1]"); err != nil {
		t.Fatal(err)
	}
	batch, err := n.CanAccessAll("wall", ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != members {
		t.Fatalf("batch = %d decisions, want %d", len(batch), members)
	}
	for i, d := range batch {
		want, err := n.CanAccess("wall", ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if d.Effect != want.Effect {
			t.Fatalf("member %d: batch %v, scalar %v", i, d.Effect, want.Effect)
		}
	}
	if batch[0].Effect != Allow || batch[1].Effect != Allow || batch[40].Effect != Deny {
		t.Fatalf("unexpected effects: owner=%v friend=%v stranger=%v",
			batch[0].Effect, batch[1].Effect, batch[40].Effect)
	}
	// Empty batch.
	if out, err := n.CanAccessAll("wall", nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}
