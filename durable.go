package reachac

import (
	"fmt"
	"net/http"
	"time"

	"reachac/internal/replica"
	"reachac/internal/wal"
)

// SyncPolicy selects when the write-ahead log fsyncs appended records; see
// the wal package for the exact guarantees of each policy.
type SyncPolicy = wal.SyncPolicy

// Sync policies, re-exported for Open options.
const (
	// SyncAlways (the default) fsyncs before a mutation is acknowledged;
	// concurrent commits share fsyncs (group commit).
	SyncAlways = wal.SyncAlways
	// SyncInterval fsyncs on a background cadence; a crash may lose up to
	// one interval of acknowledged mutations.
	SyncInterval = wal.SyncInterval
	// SyncNever leaves fsync to the OS (and to checkpoint/Close).
	SyncNever = wal.SyncNever
)

// DefaultCheckpointEvery is the WAL segment size that triggers a background
// checkpoint and log rotation.
const DefaultCheckpointEvery int64 = 4 << 20

// openConfig collects the constructor options (Open, New, FromGraph).
type openConfig struct {
	kind         EngineKind
	sync         SyncPolicy
	syncInterval time.Duration
	ckptEvery    int64
	route        bool
	planner      PlannerOptions
	follow       string
	followHTTP   *http.Client
}

// Option configures Open.
type Option func(*openConfig)

// WithEngine selects the evaluator kind the recovered network publishes.
func WithEngine(kind EngineKind) Option {
	return func(c *openConfig) { c.kind = kind }
}

// WithSync selects the WAL fsync policy (default SyncAlways).
func WithSync(p SyncPolicy) Option {
	return func(c *openConfig) { c.sync = p }
}

// WithSyncInterval selects SyncInterval with the given cadence.
func WithSyncInterval(d time.Duration) Option {
	return func(c *openConfig) { c.sync = SyncInterval; c.syncInterval = d }
}

// WithCheckpointEvery sets the WAL segment size that triggers a background
// checkpoint (default DefaultCheckpointEvery); zero or negative disables
// automatic checkpoints, leaving compaction to explicit Checkpoint calls.
func WithCheckpointEvery(bytes int64) Option {
	return func(c *openConfig) { c.ckptEvery = bytes }
}

// RecoveryInfo reports what Open reconstructed from the log directory.
type RecoveryInfo struct {
	// Groups counts the replayed WAL record groups — the acknowledged
	// mutation batches since the loaded checkpoint.
	Groups int
	// TornTail reports that the newest segment ended mid-record (a crash
	// during an append); the torn suffix was dropped and truncated away.
	TornTail bool
	// CheckpointSeq is the segment sequence the loaded checkpoint covered
	// (0 when recovery started from an empty state).
	CheckpointSeq uint64
}

// Open opens (creating if absent) a durable network rooted at dir. State is
// recovered as the latest durable checkpoint advanced by a replay of the
// write-ahead log tail — exactly the acknowledged mutation prefix; a torn
// final record (a crash mid-append) is dropped, not fatal — and the engine
// snapshot is built and published before Open returns. Every subsequent
// mutation is appended to the log as one atomic record group before it is
// acknowledged, and a size-triggered background checkpoint compacts and
// rotates the log. Call Close to flush and release the log.
func Open(dir string, opts ...Option) (*Network, error) {
	cfg := openConfig{kind: Online, sync: SyncAlways, ckptEvery: DefaultCheckpointEvery}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.follow != "" {
		return openFollower(dir, cfg)
	}
	l, rec, err := wal.Open(dir, wal.Options{Sync: cfg.sync, Interval: cfg.syncInterval})
	if err != nil {
		return nil, err
	}
	// Every leader open bumps the directory's leadership epoch, so a promoted
	// follower (an ordinary restart on the replicated directory) supersedes
	// the leader that shipped it the bytes.
	epoch, err := replica.BumpEpoch(dir)
	if err != nil {
		l.Close()
		return nil, err
	}
	n := newNetwork(rec.Graph, rec.Store)
	n.wal = l
	n.replSource = replica.NewSource(dir, epoch, l)
	// A tail request carrying a higher epoch is proof a newer leadership
	// exists (a promoted follower's replica client, or a re-pointed VIP):
	// fence this leader before it diverges from the new history.
	n.replSource.OnStaleEpoch(func(e uint64) { n.ObserveEpoch(e) })
	n.ckptEvery = cfg.ckptEvery
	n.route = cfg.route
	n.autoMigrate = cfg.planner.AutoMigrate
	n.recovery = RecoveryInfo{Groups: rec.Groups, TornTail: rec.TornTail, CheckpointSeq: rec.CheckpointSeq}
	// Republish the snapshot now, so the first read after recovery doesn't
	// pay for the engine build.
	if err := n.UseEngine(cfg.kind); err != nil {
		l.Close()
		return nil, err
	}
	return n, nil
}

// Recovery reports what Open reconstructed; it is the zero value on networks
// not created by Open.
func (n *Network) Recovery() RecoveryInfo { return n.recovery }

// Durable reports whether the network persists mutations to a write-ahead
// log (i.e. was created by Open).
func (n *Network) Durable() bool { return n.wal != nil }

// Close waits for any in-flight checkpoint, flushes and closes the
// write-ahead log. Mutations after Close fail; reads keep serving the
// in-memory state. Close is a no-op on non-durable networks and idempotent.
func (n *Network) Close() error {
	if n.follower != nil {
		return n.closeFollower()
	}
	n.mu.Lock()
	if n.wal == nil || n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	n.ckptWG.Wait()
	err := n.wal.Close()
	n.ckptMu.Lock()
	if err == nil {
		err = n.ckptErr
	}
	n.ckptMu.Unlock()
	return err
}

// Checkpoint synchronously compacts the log: it waits for any background
// checkpoint, rotates the WAL and writes a durable checkpoint of the current
// state, after which the superseded segments are deleted. When no record was
// appended since the last checkpoint the call is a no-op — an idle Close or
// SIGTERM does not rewrite an identical checkpoint file. It is
// ErrNotDurable on networks not created by Open and ErrClosed after Close.
func (n *Network) Checkpoint() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.wal == nil {
		return fmt.Errorf("reachac: Checkpoint: %w", ErrNotDurable)
	}
	if err := n.writeGuardLocked(); err != nil {
		return err
	}
	// Safe to wait under mu: the background checkpointer never takes it.
	n.ckptWG.Wait()
	if n.wal.Clean() {
		n.ctr.ckptSkipped.Add(1)
		return nil
	}
	covered, err := n.wal.Rotate()
	if err != nil {
		return err
	}
	// No clones needed: mu blocks every mutator for the whole (synchronous)
	// write, and the checkpoint writers only read.
	if err := n.wal.WriteCheckpoint(covered, n.g, n.store.Load()); err != nil {
		return err
	}
	n.ctr.ckptTaken.Add(1)
	return nil
}

// writeGuardLocked rejects mutations on closed, WAL-poisoned, fenced or
// read-replica networks. Callers hold n.mu.
func (n *Network) writeGuardLocked() error {
	if n.closed {
		return fmt.Errorf("reachac: %w", ErrClosed)
	}
	if n.follower != nil {
		return n.errFollowerReadOnly()
	}
	if fe := n.fencedEpoch.Load(); fe != 0 {
		return fmt.Errorf("reachac: leader epoch %d superseded by observed epoch %d: %w",
			n.replSource.Epoch(), fe, ErrReadOnly)
	}
	if n.walErr != nil {
		return fmt.Errorf("reachac: %w: %v", ErrReadOnly, n.walErr)
	}
	return nil
}

// ObserveEpoch tells a durable leader that leadership epoch e exists
// somewhere. When e exceeds the leader's own epoch, the leader fences
// itself: further mutations fail with ErrReadOnly, so a superseded leader
// still receiving traffic (a stale VIP, a slow DNS flip) serves stale READS
// instead of growing a divergent history no follower will accept. Reads and
// replication shipping continue — a catching-up follower can still drain
// this leader's tail before re-pointing. The report is true when the
// network is (now) fenced. Lower or equal epochs, non-durable networks and
// followers are no-ops. The replication endpoints call this automatically
// for every higher-epoch tail request; it is exported for serving layers
// with out-of-band epoch signals (an epoch file, a coordination service).
func (n *Network) ObserveEpoch(e uint64) bool {
	if n.replSource == nil || n.follower != nil {
		return false
	}
	if e <= n.replSource.Epoch() {
		return n.fencedEpoch.Load() != 0
	}
	for {
		cur := n.fencedEpoch.Load()
		if cur >= e || n.fencedEpoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// Fenced reports whether the leader fenced itself after observing a higher
// leadership epoch (see ObserveEpoch).
func (n *Network) Fenced() bool { return n.fencedEpoch.Load() != 0 }

// commitLocked durably appends one committed batch's operations as a single
// atomic record group, then triggers a background checkpoint if the segment
// crossed the size threshold. An append failure poisons the network
// (read-only from then on): the in-memory state may contain non-invertible
// mutations the log missed, so acknowledging anything further could diverge
// from what recovery will rebuild. Callers hold n.mu.
func (n *Network) commitLocked(ops []wal.Op) error {
	if n.wal == nil || len(ops) == 0 {
		return nil
	}
	if err := n.wal.Append(ops); err != nil {
		n.walErr = err
		return fmt.Errorf("reachac: WAL append failed (network is now read-only): %w", err)
	}
	n.maybeCheckpointLocked()
	return nil
}

// maybeCheckpointLocked starts at most one background checkpoint once the
// current WAL segment exceeds the configured threshold. The rotation and the
// state clone happen under n.mu — so the checkpoint covers exactly the
// rotated segments — while the expensive serialization and fsyncs run in a
// goroutine off the mutation path. Callers hold n.mu.
func (n *Network) maybeCheckpointLocked() {
	if n.ckptEvery <= 0 || n.wal.Size() < n.ckptEvery {
		return
	}
	if !n.ckptActive.CompareAndSwap(false, true) {
		return
	}
	covered, err := n.wal.Rotate()
	if err != nil {
		n.recordCkptErr(err)
		n.ckptActive.Store(false)
		return
	}
	gc, sc := n.g.Clone(), n.store.Load().Clone()
	n.ckptWG.Add(1)
	go func() {
		defer n.ckptWG.Done()
		defer n.ckptActive.Store(false)
		if err := n.wal.WriteCheckpoint(covered, gc, sc); err != nil {
			n.recordCkptErr(err)
			return
		}
		n.ctr.ckptTaken.Add(1)
	}()
}

// recordCkptErr retains the first background checkpoint failure for Close to
// surface. It takes only ckptMu, so the background checkpointer can report
// while a caller holds n.mu (e.g. Checkpoint waiting on ckptWG).
func (n *Network) recordCkptErr(err error) {
	n.ckptMu.Lock()
	if n.ckptErr == nil {
		n.ckptErr = err
	}
	n.ckptMu.Unlock()
}
