package reachac

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"reachac/internal/ring"
)

// These tests drive View.ShardExpand the way internal/shard's router does —
// a full distributed sweep simulated over one view, where each "shard" call
// only advances states it owns on the ring and everything else round-trips
// as a boundary exit — and assert the result equals the local oracle
// (CheckPath / PathAudience) for every path shape the router routes.

// expandSweep runs the router's sweep discipline against a single view:
// dispatch each frontier slice with the owner's Self index, dedupe exits
// against the global visited set, and merge complete retired sets only after
// the exits have formed the next frontier (exits are a subset of retired).
func expandSweep(t *testing.T, v *View, shards int, path, seed, requester string, retired bool) (accepted []string, found bool, visited map[ShardState]struct{}) {
	t.Helper()
	rg, err := ring.New(shards, ring.DefaultVNodes)
	if err != nil {
		t.Fatalf("ring.New(%d): %v", shards, err)
	}
	start := ShardState{Name: seed, Step: 0, D: 0}
	visited = map[ShardState]struct{}{start: {}}
	frontier := map[int][]ShardState{rg.Owner(seed): {start}}
	accSet := make(map[string]struct{})
	for len(frontier) > 0 && !found {
		var replies []ShardExpandResponse
		for self, states := range frontier {
			resp, err := v.ShardExpand(ShardExpandRequest{
				Path: path, Shards: shards, Self: self,
				States: states, Requester: requester, Retired: retired,
			})
			if err != nil {
				t.Fatalf("ShardExpand(self=%d, path=%s): %v", self, path, err)
			}
			replies = append(replies, resp)
		}
		next := make(map[int][]ShardState)
		for _, resp := range replies {
			if resp.Found {
				found = true
			}
			for _, name := range resp.Accepted {
				accSet[name] = struct{}{}
			}
			for _, st := range resp.Exits {
				if _, dup := visited[st]; dup {
					continue
				}
				visited[st] = struct{}{}
				next[rg.Owner(st.Name)] = append(next[rg.Owner(st.Name)], st)
			}
		}
		for _, resp := range replies {
			for _, st := range resp.Retired {
				visited[st] = struct{}{}
			}
		}
		frontier = next
	}
	for name := range accSet {
		accepted = append(accepted, name)
	}
	sort.Strings(accepted)
	return accepted, found, visited
}

func expandTestNetwork(t *testing.T) (*Network, *View, []string) {
	t.Helper()
	n := New()
	t.Cleanup(func() { n.Close() })
	var names []string
	ids := make(map[string]UserID)
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("x%02d", i)
		var attrs []Attr
		if i%3 == 0 {
			dept := "eng"
			if i%6 == 0 {
				dept = "ops"
			}
			attrs = append(attrs, StringAttr("dept", dept), IntAttr("level", i%5))
		}
		ids[name] = n.MustAddUser(name, attrs...)
		names = append(names, name)
	}
	rng := rand.New(rand.NewSource(7))
	labels := []string{"friend", "colleague", "parent"}
	added := make(map[string]struct{})
	for len(added) < 220 {
		from := names[rng.Intn(len(names))]
		to := names[rng.Intn(len(names))]
		label := labels[rng.Intn(len(labels))]
		key := from + "|" + to + "|" + label
		if from == to {
			continue
		}
		if _, dup := added[key]; dup {
			continue
		}
		added[key] = struct{}{}
		if err := n.Relate(ids[from], ids[to], label); err != nil {
			t.Fatalf("Relate(%s): %v", key, err)
		}
	}
	v, err := n.View()
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	t.Cleanup(v.Close)
	return n, v, names
}

var expandCatalog = []string{
	`friend*[1]`,
	`friend+[1,2]`,
	`friend-[1]`,
	`friend+[1,2]/colleague+[1]`,
	`parent+[1]/friend+[1,2]`,
	`friend+[1,2]{dept="eng"}`,
	`friend+[2,*]`,
}

// TestShardExpandSweepMatchesOracle: a simulated multi-shard sweep must
// accept exactly the local engine's path audience, and point queries must
// agree with CheckPath, for every catalog shape and shard count.
func TestShardExpandSweepMatchesOracle(t *testing.T) {
	_, v, names := expandTestNetwork(t)
	for _, shards := range []int{1, 2, 3} {
		for _, path := range expandCatalog {
			seed := names[3]
			seedID, _ := v.UserID(seed)
			wantIDs, err := v.PathAudience(seedID, path)
			if err != nil {
				t.Fatalf("PathAudience(%s): %v", path, err)
			}
			want := make([]string, 0, len(wantIDs))
			for _, id := range wantIDs {
				name, ok := v.UserName(id)
				if !ok {
					t.Fatalf("no name for id %d", id)
				}
				want = append(want, name)
			}
			sort.Strings(want)
			got, _, _ := expandSweep(t, v, shards, path, seed, "", false)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("shards=%d path=%s: sweep accepted %v, oracle audience %v", shards, path, got, want)
			}

			for _, req := range []string{names[7], names[20], names[33]} {
				reqID, _ := v.UserID(req)
				want, err := v.CheckPath(seedID, reqID, path)
				if err != nil {
					t.Fatalf("CheckPath(%s): %v", path, err)
				}
				_, found, _ := expandSweep(t, v, shards, path, seed, req, false)
				if found != want {
					t.Fatalf("shards=%d path=%s req=%s: sweep found=%v oracle=%v", shards, path, req, found, want)
				}
			}
		}
	}
}

// TestShardExpandRetiredSets: with Retired set, every shard echoes its
// complete retired state set — a superset of its exits, always including the
// dispatched states — so the router can build cache-maintenance metadata.
func TestShardExpandRetiredSets(t *testing.T) {
	_, v, names := expandTestNetwork(t)
	seed := names[3]
	path := `friend+[1,2]/colleague+[1]`
	accPlain, _, _ := expandSweep(t, v, 3, path, seed, "", false)
	accRetired, _, visited := expandSweep(t, v, 3, path, seed, "", true)
	if fmt.Sprint(accPlain) != fmt.Sprint(accRetired) {
		t.Fatalf("retired sweep changed the answer: %v vs %v", accPlain, accRetired)
	}
	if _, ok := visited[ShardState{Name: seed, Step: 0, D: 0}]; !ok {
		t.Fatalf("retired visited set lost the seed state")
	}
	// The retained visited set must dominate the plain sweep's boundary-only
	// set: it adds the locally-explored interior states.
	_, _, plainVisited := expandSweep(t, v, 3, path, seed, "", false)
	if len(visited) < len(plainVisited) {
		t.Fatalf("retired visited %d states, plain boundary tracking %d", len(visited), len(plainVisited))
	}
}

// TestShardExpandResolve: users are replicated everywhere, so any shard
// reports which names do not exist; resolve-only requests skip the search.
func TestShardExpandResolve(t *testing.T) {
	_, v, names := expandTestNetwork(t)
	resp, err := v.ShardExpand(ShardExpandRequest{
		Path: `friend*[1]`, Shards: 2, Self: 0,
		Resolve: []string{names[0], "nobody", names[1], "ghost"},
	})
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	sort.Strings(resp.Missing)
	if fmt.Sprint(resp.Missing) != fmt.Sprint([]string{"ghost", "nobody"}) {
		t.Fatalf("missing = %v, want [ghost nobody]", resp.Missing)
	}
	if resp.Accepted != nil || resp.Exits != nil || resp.Found {
		t.Fatalf("resolve-only request ran a search: %+v", resp)
	}
}

// TestShardExpandUnknownStatesSkipped: a state naming a user this shard has
// not replicated yet expands to nothing — under-approximation is the safe
// direction because the router fails checks closed on errors, not on lag.
func TestShardExpandUnknownStatesSkipped(t *testing.T) {
	_, v, _ := expandTestNetwork(t)
	resp, err := v.ShardExpand(ShardExpandRequest{
		Path: `friend+[1,2]`, Shards: 1, Self: 0,
		States: []ShardState{{Name: "never-added", Step: 0, D: 0}},
	})
	if err != nil {
		t.Fatalf("unknown state: %v", err)
	}
	if len(resp.Accepted) != 0 || len(resp.Exits) != 0 {
		t.Fatalf("unknown state expanded: %+v", resp)
	}
}

// TestShardExpandAbsentLabel: a label with no local edges matches nothing
// locally without being an error — absence is not global unreachability.
func TestShardExpandAbsentLabel(t *testing.T) {
	_, v, names := expandTestNetwork(t)
	resp, err := v.ShardExpand(ShardExpandRequest{
		Path: `nosuchlabel+[1,3]`, Shards: 1, Self: 0,
		States: []ShardState{{Name: names[0], Step: 0, D: 0}},
	})
	if err != nil {
		t.Fatalf("absent label: %v", err)
	}
	if len(resp.Accepted) != 0 || len(resp.Exits) != 0 {
		t.Fatalf("absent label expanded: %+v", resp)
	}
}

func TestShardExpandRequestValidation(t *testing.T) {
	_, v, names := expandTestNetwork(t)
	st := []ShardState{{Name: names[0], Step: 0, D: 0}}
	cases := []struct {
		name string
		req  ShardExpandRequest
	}{
		{"bad path", ShardExpandRequest{Path: `???`, Shards: 2, Self: 0, States: st}},
		{"zero shards", ShardExpandRequest{Path: `friend*[1]`, Shards: 0, Self: 0, States: st}},
		{"self out of range", ShardExpandRequest{Path: `friend*[1]`, Shards: 2, Self: 7, States: st}},
		{"negative self", ShardExpandRequest{Path: `friend*[1]`, Shards: 2, Self: -1, States: st}},
		{"step out of range", ShardExpandRequest{Path: `friend*[1]`, Shards: 2, Self: 0,
			States: []ShardState{{Name: names[0], Step: 4, D: 0}}}},
		{"negative d", ShardExpandRequest{Path: `friend*[1]`, Shards: 2, Self: 0,
			States: []ShardState{{Name: names[0], Step: 0, D: -2}}}},
		{"depth beyond limit", ShardExpandRequest{Path: `friend+[1,40000]`, Shards: 2, Self: 0, States: st}},
	}
	for _, tc := range cases {
		if _, err := v.ShardExpand(tc.req); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// TestCachedParsePathAndRing: the per-shard memoization layers — repeat
// lookups hit, invalid inputs never populate, and the path cache stays
// bounded against adversarial expression streams.
func TestCachedParsePathAndRing(t *testing.T) {
	p1, err := cachedParsePath(`colleague+[1,4]`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p2, err := cachedParsePath(`colleague+[1,4]`)
	if err != nil || p1 != p2 {
		t.Fatalf("second parse did not hit the cache: %p vs %p (%v)", p1, p2, err)
	}
	if _, err := cachedParsePath(`!!`); err == nil {
		t.Fatalf("invalid path parsed")
	}
	// Flood past the bound: the cache must stop growing, not evict-thrash.
	for i := 0; i < 2*pathCacheMax; i++ {
		if _, err := cachedParsePath(fmt.Sprintf(`friend+[1,%d]`, i+2)); err != nil {
			t.Fatalf("flood parse %d: %v", i, err)
		}
	}
	pathCacheMu.RLock()
	size := len(pathCache)
	pathCacheMu.RUnlock()
	if size > pathCacheMax {
		t.Fatalf("path cache grew to %d entries past its %d bound", size, pathCacheMax)
	}

	r1, err := cachedRing(5, 0)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	r2, err := cachedRing(5, 0)
	if err != nil || r1 != r2 {
		t.Fatalf("second ring lookup did not hit the cache")
	}
	if _, err := cachedRing(0, 0); err == nil {
		t.Fatalf("zero-shard ring constructed")
	}
}

// TestPolicyDump: the name-keyed policy export the router bootstraps from.
func TestPolicyDump(t *testing.T) {
	n := New()
	defer n.Close()
	owner := n.MustAddUser("powner")
	n.MustAddUser("pother")
	if _, err := n.Share("doc-a", owner, `friend+[1,2]`, `colleague*[1]`); err != nil {
		t.Fatalf("share doc-a: %v", err)
	}
	if _, err := n.Share("doc-b", owner, `parent-[1]`); err != nil {
		t.Fatalf("share doc-b: %v", err)
	}
	v, err := n.View()
	if err != nil {
		t.Fatalf("view: %v", err)
	}
	defer v.Close()
	dump := v.PolicyDump()
	if len(dump) != 2 {
		t.Fatalf("dump has %d resources, want 2: %+v", len(dump), dump)
	}
	byRes := make(map[string]ResourcePolicy)
	for _, rp := range dump {
		byRes[rp.Resource] = rp
	}
	a, ok := byRes["doc-a"]
	if !ok || a.Owner != "powner" {
		t.Fatalf("doc-a dump wrong: %+v", a)
	}
	if len(a.Rules) != 1 || len(a.Rules[0].Paths) != 2 {
		t.Fatalf("doc-a rules wrong: %+v", a.Rules)
	}
	sort.Strings(a.Rules[0].Paths)
	if a.Rules[0].Paths[0] != `colleague*[1]` || a.Rules[0].Paths[1] != `friend+[1,2]` {
		t.Fatalf("doc-a paths did not round-trip canonically: %v", a.Rules[0].Paths)
	}
	if b := byRes["doc-b"]; b.Owner != "powner" || len(b.Rules) != 1 || b.Rules[0].Paths[0] != `parent-[1]` {
		t.Fatalf("doc-b dump wrong: %+v", byRes["doc-b"])
	}
}
