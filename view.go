package reachac

import (
	"fmt"
	"sort"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/pathexpr"
)

// View pins one engine snapshot for a group of read operations: every call
// on the view — name resolution included — observes the same immutable
// graph clone and frozen policy view, with no per-call locking. It is how
// the serving layer answers a request that mixes resolution and decision
// (resolve the requester's name, then check) without racing concurrent
// mutators and without touching the network's mutation lock.
//
// A view holds its snapshot's reader pin until Close, which must be called
// (keep views request-scoped and short-lived: a pinned snapshot blocks the
// O(Δ) clone-advance of the next publication). After Close every method
// panics. A View is safe for concurrent use before Close.
type View struct {
	n *Network
	s *snapshot
}

// View pins the current engine snapshot (republishing first if the graph or
// policies changed) and returns a handle reading from it. The caller must
// Close the view.
func (n *Network) View() (*View, error) {
	s, err := n.snapshot()
	if err != nil {
		return nil, err
	}
	return &View{n: n, s: s}, nil
}

// Close releases the view's snapshot pin. It must be called exactly once.
func (v *View) Close() {
	v.s.release()
	v.s = nil
}

// UserID resolves a member name against the view's graph.
func (v *View) UserID(name string) (UserID, bool) {
	return v.s.g.NodeByName(name)
}

// UserName returns the name of a member, or false for an ID the view's
// graph does not contain.
func (v *View) UserName(id UserID) (string, bool) {
	if !v.s.g.ValidNode(id) {
		return "", false
	}
	return v.s.g.Node(id).Name, true
}

// NumUsers returns the member count of the view.
func (v *View) NumUsers() int { return v.s.g.NumNodes() }

// NumRelationships returns the live relationship count of the view.
func (v *View) NumRelationships() int { return v.s.g.NumEdges() }

// OutDegree returns the number of outgoing relationships of from.
func (v *View) OutDegree(from UserID) int { return v.s.g.OutDegree(from) }

// Relationships visits from's outgoing relationships in insertion order;
// visit returning false stops the iteration. Together with OutDegree and
// HasRelationship it exposes the pinned snapshot's adjacency without
// cloning it, which is how workload builders (cmd/acbench's streamed
// cells) sample a network they never materialized a *graph.Graph for.
func (v *View) Relationships(from UserID, visit func(to UserID, relType string) bool) {
	g := v.s.g
	g.OutEdges(from, func(e graph.Edge) bool {
		return visit(e.To, g.LabelName(e.Label))
	})
}

// HasRelationship reports whether the typed relationship from→to exists
// in the view.
func (v *View) HasRelationship(from, to UserID, relType string) bool {
	return v.s.g.HasEdge(from, to, relType)
}

// CanAccess is Network.CanAccess against the pinned snapshot.
func (v *View) CanAccess(resource string, requester UserID) (Decision, error) {
	v.n.ctr.checks.Add(1)
	return v.s.decide(core.ResourceID(resource), requester)
}

// CanAccessAll is Network.CanAccessAll against the pinned snapshot.
func (v *View) CanAccessAll(resource string, requesters []UserID) ([]Decision, error) {
	v.n.ctr.batchChecks.Add(1)
	v.n.ctr.checks.Add(uint64(len(requesters)))
	return v.s.decideAll(core.ResourceID(resource), requesters)
}

// CheckPath is Network.CheckPath against the pinned snapshot.
func (v *View) CheckPath(owner, requester UserID, expr string) (bool, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return false, err
	}
	v.n.ctr.checks.Add(1)
	return v.s.reval.Reachable(owner, requester, p)
}

// Audience is Network.Audience against the pinned snapshot.
func (v *View) Audience(resource string) ([]UserID, error) {
	v.n.ctr.audiences.Add(1)
	return v.s.audience(resource)
}

// PathAudience is Network.PathAudience against the pinned snapshot.
func (v *View) PathAudience(owner UserID, expr string) ([]UserID, error) {
	v.n.ctr.audiences.Add(1)
	return v.s.pathAudience(owner, expr)
}

// audience enumerates the users the resource's rules admit; an unregistered
// resource is ErrUnknownResource. The per-condition sets come from the
// snapshot's incrementally maintained audience cache, so repeat audiences —
// and audiences after a delta advance — skip the graph traversal entirely,
// regardless of the engine kind answering point checks.
func (s *snapshot) audience(resource string) ([]UserID, error) {
	res := core.ResourceID(resource)
	if _, ok := s.store.Owner(res); !ok {
		return nil, fmt.Errorf("reachac: audience of %q: %w", resource, ErrUnknownResource)
	}
	if s.aud != nil {
		return s.store.AudienceWith(res, s.aud)
	}
	return s.store.Audience(res, s.g, s.eval)
}

// pathAudience enumerates the users a parsed path expression reaches from
// owner, excluding the owner, in ID order. Evaluators that can materialize
// an audience in one traversal (core.AudienceSetEvaluator) are used
// directly; the rest fall back to one reachability query per member.
func (s *snapshot) pathAudience(owner UserID, expr string) ([]UserID, error) {
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return nil, err
	}
	if !s.g.ValidNode(owner) {
		return nil, fmt.Errorf("reachac: path audience of user %d: %w", owner, ErrUnknownUser)
	}
	if s.aud != nil {
		ids, err := s.aud.Audience(owner, p)
		if err != nil {
			return nil, err
		}
		// The cache owns ids (sorted ascending); copy, dropping the owner.
		out := make([]UserID, 0, len(ids))
		for _, id := range ids {
			if id != owner {
				out = append(out, id)
			}
		}
		return out, nil
	}
	if fast, ok := s.eval.(core.AudienceSetEvaluator); ok {
		ids, err := fast.AudienceSet(owner, p)
		if err != nil {
			return nil, err
		}
		out := make([]UserID, 0, len(ids))
		for _, id := range ids {
			if id != owner {
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	var (
		out      []UserID
		firstErr error
	)
	s.g.Nodes(func(n graph.Node) bool {
		if n.ID == owner {
			return true
		}
		ok, err := s.eval.Reachable(owner, n.ID, p)
		if err != nil {
			firstErr = err
			return false
		}
		if ok {
			out = append(out, n.ID)
		}
		return true
	})
	return out, firstErr
}
