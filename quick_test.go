package reachac

// Property-based tests over randomized social graphs AND randomized path
// expressions: all evaluation engines must return identical decisions
// (DESIGN.md invariant 1), and granted decisions must be witnessed by a
// verifiable path (invariant 7).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reachac/internal/graph"
	"reachac/internal/joinindex"
	"reachac/internal/pathexpr"
	"reachac/internal/search"
	"reachac/internal/tclosure"
)

var quickLabels = []string{"friend", "colleague", "parent"}

// randGraph builds a random labeled social graph with n nodes, ~m edges and
// sporadic attributes.
func randGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		var attrs graph.Attrs
		if rng.Intn(2) == 0 {
			attrs = graph.Attrs{"age": graph.Int(10 + rng.Intn(60))}
		}
		g.MustAddNode(quickName(i), attrs)
	}
	for i := 0; i < m; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			_, _ = g.AddEdge(u, v, quickLabels[rng.Intn(len(quickLabels))])
		}
	}
	return g
}

func quickName(i int) string {
	return "q" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// randPath builds a random valid path expression of 1..3 steps.
func randPath(rng *rand.Rand) *pathexpr.Path {
	steps := 1 + rng.Intn(3)
	p := &pathexpr.Path{}
	for s := 0; s < steps; s++ {
		st := pathexpr.Step{
			Label: quickLabels[rng.Intn(len(quickLabels))],
			Dir:   pathexpr.Direction(rng.Intn(3)),
		}
		lo := 1 + rng.Intn(2)
		switch rng.Intn(4) {
		case 0:
			st.MinDepth, st.MaxDepth = lo, lo
		case 1, 2:
			st.MinDepth, st.MaxDepth = lo, lo+rng.Intn(2)
		case 3:
			st.MinDepth, st.Unbounded = lo, true
		}
		if rng.Intn(4) == 0 {
			ops := []pathexpr.Op{pathexpr.OpGe, pathexpr.OpLt, pathexpr.OpEq, pathexpr.OpNe}
			st.Preds = []pathexpr.Pred{{
				Attr:  "age",
				Op:    ops[rng.Intn(len(ops))],
				Value: graph.Int(10 + rng.Intn(60)),
			}}
		}
		p.Steps = append(p.Steps, st)
	}
	return p
}

func TestQuickEngineAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := randGraph(rng, n, n*2+rng.Intn(n*2))

		oracle := search.New(g)
		dfs := search.NewDFS(g)
		closure := tclosure.New(g)
		idx, err := joinindex.Build(g, joinindex.Options{GreedyCover: true})
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		idxPruned, err := joinindex.Build(g, joinindex.Options{})
		if err != nil {
			t.Logf("seed %d: build pruned: %v", seed, err)
			return false
		}

		for trial := 0; trial < 4; trial++ {
			p := randPath(rng)
			if p.Validate() != nil {
				continue
			}
			for probe := 0; probe < 12; probe++ {
				o := graph.NodeID(rng.Intn(n))
				r := graph.NodeID(rng.Intn(n))
				want, err := oracle.Reachable(o, r, p)
				if err != nil {
					t.Logf("seed %d: oracle: %v", seed, err)
					return false
				}
				for name, eval := range map[string]interface {
					Reachable(graph.NodeID, graph.NodeID, *pathexpr.Path) (bool, error)
				}{
					"dfs": dfs, "closure": closure, "index-greedy": idx, "index-pruned": idxPruned,
				} {
					got, err := eval.Reachable(o, r, p)
					if err != nil {
						t.Logf("seed %d %s: %v", seed, name, err)
						return false
					}
					if got != want {
						t.Logf("seed %d: %s disagrees on (%d,%d,%s): %v want %v",
							seed, name, o, r, p, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGrantsAreWitnessed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randGraph(rng, n, n*3)
		eng := search.New(g)
		for trial := 0; trial < 6; trial++ {
			p := randPath(rng)
			o := graph.NodeID(rng.Intn(n))
			r := graph.NodeID(rng.Intn(n))
			hops, ok, err := eng.Witness(o, r, p)
			if err != nil {
				return false
			}
			if !ok {
				continue
			}
			if err := search.VerifyWitness(g, o, r, p, hops); err != nil {
				t.Logf("seed %d: unverifiable witness for (%d,%d,%s): %v", seed, o, r, p, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPath(rng)
		if p.Validate() != nil {
			return true
		}
		s := p.String()
		p2, err := pathexpr.Parse(s)
		if err != nil {
			t.Logf("seed %d: %q does not re-parse: %v", seed, s, err)
			return false
		}
		return p2.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMutationConsistency(t *testing.T) {
	// After any sequence of relate/unrelate operations through the facade,
	// the Index engine must agree with a freshly-built Online engine.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New()
		const users = 8
		ids := make([]UserID, users)
		for i := range ids {
			ids[i] = n.MustAddUser(quickName(i))
		}
		type rel struct {
			a, b UserID
			l    string
		}
		var live []rel
		for op := 0; op < 30; op++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(live))
				r := live[i]
				if n.Unrelate(r.a, r.b, r.l) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			a, b := ids[rng.Intn(users)], ids[rng.Intn(users)]
			l := quickLabels[rng.Intn(len(quickLabels))]
			if a == b {
				continue
			}
			if err := n.Relate(a, b, l); err == nil {
				live = append(live, rel{a, b, l})
			}
		}
		if err := n.UseEngine(Index); err != nil {
			return false
		}
		p := randPath(rng)
		if p.Validate() != nil {
			return true
		}
		oracle := search.New(n.Graph())
		for probe := 0; probe < 10; probe++ {
			o := ids[rng.Intn(users)]
			r := ids[rng.Intn(users)]
			want, err := oracle.Reachable(o, r, p)
			if err != nil {
				return false
			}
			got, err := n.CheckPath(o, r, p.String())
			if err != nil {
				return false
			}
			if got != want {
				t.Logf("seed %d: mutated-index disagrees on (%d,%d,%s)", seed, o, r, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
