package reachac

// Benchmark families, one per experiment of DESIGN.md §3 (run
// cmd/experiments for the full table-producing sweeps; these testing.B
// targets regenerate each experiment's core measurement at a fixed size):
//
//	E1  BenchmarkIndexBuild      index construction per family
//	E2  BenchmarkQueryHit        per-engine latency, reachability-biased pairs
//	E3  BenchmarkQueryMiss       per-engine latency, uniform pairs
//	E4  BenchmarkEnforcement     policy decisions via the osn simulation
//	E5  BenchmarkAblation        look-ahead and W-table ablations
//	E6  BenchmarkClosureBuild    the transitive-closure baseline's build cost
//	F3/F5/F6 Benchmark{LineGraph,Interval,TwoHop} pipeline stage costs

import (
	"fmt"
	"testing"

	"reachac/internal/core"
	"reachac/internal/generate"
	"reachac/internal/graph"
	"reachac/internal/interval"
	"reachac/internal/joinindex"
	"reachac/internal/linegraph"
	"reachac/internal/osn"
	"reachac/internal/pathexpr"
	"reachac/internal/scc"
	"reachac/internal/search"
	"reachac/internal/tclosure"
	"reachac/internal/twohop"
	"reachac/internal/workload"
)

const benchSize = 2000

func benchGraph(family string) *graph.Graph {
	return generate.OSN(generate.OSNConfig{
		Nodes:     benchSize,
		Seed:      42,
		WithAttrs: true,
		Acyclic:   family == "follow",
	})
}

func BenchmarkIndexBuild(b *testing.B) {
	for _, fam := range []string{"social", "follow"} {
		g := benchGraph(fam)
		b.Run(fam, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := joinindex.Build(g, joinindex.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchEngines(b *testing.B, g *graph.Graph) map[string]core.Evaluator {
	b.Helper()
	idx, err := joinindex.Build(g, joinindex.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]core.Evaluator{
		"online-bfs": search.New(g),
		"closure":    tclosure.New(g),
		"join-index": idx,
	}
}

func benchQueries() []workload.QuerySpec {
	return append(workload.DefaultCatalog(),
		workload.QuerySpec{Name: "deep-friends", Path: pathexpr.MustParse("friend+[1,4]")},
		workload.QuerySpec{Name: "transitive-friends", Path: pathexpr.MustParse("friend+[1,*]")},
	)
}

func benchLatency(b *testing.B, pairsFor func(*graph.Graph) []workload.Pair) {
	for _, fam := range []string{"social", "follow"} {
		g := benchGraph(fam)
		pairs := pairsFor(g)
		engines := benchEngines(b, g)
		for _, name := range []string{"online-bfs", "closure", "join-index"} {
			eval := engines[name]
			for _, q := range benchQueries() {
				b.Run(fam+"/"+name+"/"+q.Name, func(b *testing.B) {
					// Warm lazily-built closures outside the timer.
					if _, err := eval.Reachable(pairs[0].Owner, pairs[0].Requester, q.Path); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						p := pairs[i%len(pairs)]
						if _, err := eval.Reachable(p.Owner, p.Requester, q.Path); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkQueryHit(b *testing.B) {
	benchLatency(b, func(g *graph.Graph) []workload.Pair {
		return workload.HitPairs(g, 128, 3, 1)
	})
}

func BenchmarkQueryMiss(b *testing.B) {
	benchLatency(b, func(g *graph.Graph) []workload.Pair {
		return workload.RandomPairs(g, 128, 2)
	})
}

func BenchmarkEnforcement(b *testing.B) {
	g := benchGraph("social")
	reqs := workload.Requests(g, 512, len(workload.DefaultCatalog()), 3)
	for name, eval := range benchEngines(b, g) {
		b.Run(name, func(b *testing.B) {
			net := osn.New(g, eval)
			if _, err := net.Populate(workload.DefaultCatalog(), 1, 4); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.Run(reqs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(reqs)), "decisions/op")
		})
	}
}

func BenchmarkAblation(b *testing.B) {
	// Look-ahead on/off on the follow family (where it prunes), deep query,
	// miss-heavy pairs.
	g := benchGraph("follow")
	pairs := workload.RandomPairs(g, 128, 5)
	deep := pathexpr.MustParse("friend+[1,*]")
	for name, opts := range map[string]joinindex.Options{
		"lookahead-on":  {},
		"lookahead-off": {DisableLookahead: true},
	} {
		idx, err := joinindex.Build(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := idx.Reachable(p.Owner, p.Requester, deep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// W-table on/off for the literal paper-join strategy, small graph.
	small := generate.OSN(generate.OSNConfig{Nodes: 150, Seed: 42, AvgOutDegree: 4})
	q := pathexpr.MustParse("friend+[1]/colleague+[1]")
	smallPairs := workload.HitPairs(small, 32, 2, 6)
	for name, opts := range map[string]joinindex.Options{
		"wtable-on":  {Strategy: joinindex.EvalPaperJoin},
		"wtable-off": {Strategy: joinindex.EvalPaperJoin, DisableWTable: true},
	} {
		idx, err := joinindex.Build(small, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := smallPairs[i%len(smallPairs)]
				if _, err := idx.Reachable(p.Owner, p.Requester, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClosureBuild(b *testing.B) {
	g := benchGraph("social")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := tclosure.New(g)
		e.MaterializeClosures()
	}
}

// Pipeline stage micro-benchmarks (figure machinery).

func BenchmarkLineGraphBuild(b *testing.B) {
	g := benchGraph("social")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		linegraph.Build(g, linegraph.Opts{})
	}
}

func BenchmarkIntervalLabel(b *testing.B) {
	g := benchGraph("follow")
	l := linegraph.Build(g, linegraph.Opts{})
	parts := scc.Tarjan(l.D)
	dag := scc.Condense(l.D, parts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The production configuration: per-vertex interval budget of 8.
		if _, err := interval.LabelBounded(dag, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoHopPruned(b *testing.B) {
	g := benchGraph("follow")
	l := linegraph.Build(g, linegraph.Opts{})
	parts := scc.Tarjan(l.D)
	dag := scc.Condense(l.D, parts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		twohop.Pruned(dag)
	}
}

func BenchmarkPathParse(b *testing.B) {
	const expr = `friend+[1,2]/colleague+[1]{age>=18, city="paris"}/parent-[1,*]`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pathexpr.Parse(expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeCanAccess(b *testing.B) {
	g := benchGraph("social")
	n := FromGraph(g)
	owner, _ := n.UserID("u000010")
	if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
		b.Fatal(err)
	}
	if err := n.UseEngine(Index); err != nil {
		b.Fatal(err)
	}
	pairs := workload.HitPairs(g, 64, 2, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.CanAccess("r", pairs[i%len(pairs)].Requester); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAccessNetwork builds a shared-graph network with one policy and a
// pool of requester pairs for the serial/parallel CanAccess benchmarks.
func benchAccessNetwork(b *testing.B, kind EngineKind) (*Network, []workload.Pair) {
	b.Helper()
	g := benchGraph("social")
	n := FromGraph(g)
	owner, _ := n.UserID("u000010")
	if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
		b.Fatal(err)
	}
	if err := n.UseEngine(kind); err != nil {
		b.Fatal(err)
	}
	pairs := workload.HitPairs(g, 256, 2, 7)
	// Publish the snapshot and warm lazily built structures outside the
	// timer.
	if _, err := n.CanAccess("r", pairs[0].Requester); err != nil {
		b.Fatal(err)
	}
	return n, pairs
}

// BenchmarkCanAccessSerial is the single-goroutine baseline for
// BenchmarkCanAccessParallel: same network, same requester pool.
func BenchmarkCanAccessSerial(b *testing.B) {
	for _, kind := range []EngineKind{Online, Closure, Index} {
		b.Run(kind.String(), func(b *testing.B) {
			n, pairs := benchAccessNetwork(b, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.CanAccess("r", pairs[i%len(pairs)].Requester); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCanAccessParallel measures snapshot-isolated read throughput on
// a read-only workload: GOMAXPROCS goroutines hammering CanAccess against
// one published snapshot. With the global mutex this plateaued at the
// serial rate; snapshot isolation should scale near-linearly with cores
// (compare ns/op against BenchmarkCanAccessSerial).
func BenchmarkCanAccessParallel(b *testing.B) {
	for _, kind := range []EngineKind{Online, Closure, Index} {
		b.Run(kind.String(), func(b *testing.B) {
			n, pairs := benchAccessNetwork(b, kind)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := n.CanAccess("r", pairs[i%len(pairs)].Requester); err != nil {
						// b.Fatal must not run on RunParallel workers.
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkCheckPathParallel is the cache-free companion of
// BenchmarkCanAccessParallel: CheckPath evaluates the path expression anew
// on every call (no decision cache, no audit), so this measures the
// evaluators' own concurrent read throughput against one snapshot.
func BenchmarkCheckPathParallel(b *testing.B) {
	for _, kind := range []EngineKind{Online, Closure, Index} {
		b.Run(kind.String(), func(b *testing.B) {
			n, pairs := benchAccessNetwork(b, kind)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					p := pairs[i%len(pairs)]
					if _, err := n.CheckPath(p.Owner, p.Requester, "friend+[1,2]"); err != nil {
						// b.Fatal must not run on RunParallel workers.
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkCanAccessAll measures the batch API fanning one resource check
// across every member of the graph through the internal worker pool.
func BenchmarkCanAccessAll(b *testing.B) {
	n, _ := benchAccessNetwork(b, Index)
	requesters := make([]UserID, benchSize)
	for i := range requesters {
		requesters[i] = UserID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.CanAccessAll("r", requesters); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchSize), "decisions/op")
}

// BenchmarkInterleavedMutateRead measures the snapshot republication cost
// under the worst-case production pattern PR 1 documented: every mutation
// is immediately followed by a read, so each read pays a publication. The
// "delta" arm uses the default bounded delta log (the retired clone is
// fast-forwarded in O(Δ)); the "rebuild" arm disables the log, forcing the
// pre-delta O(V+E) clone+rebuild on every publication. Online engines run
// on a 50k-member graph; the precomputed engines run smaller (a 50k×50k
// bitset closure would not fit) but exercise the same two paths.
func BenchmarkInterleavedMutateRead(b *testing.B) {
	cases := []struct {
		kind EngineKind
		size int
	}{
		{Online, 50000},
		{OnlineDFS, 50000},
		{OnlineAdaptive, 50000},
		{Closure, 2000},
		{Index, 2000},
	}
	for _, c := range cases {
		for _, mode := range []string{"delta", "rebuild"} {
			b.Run(fmt.Sprintf("%s-%d/%s", c.kind, c.size, mode), func(b *testing.B) {
				g := generate.OSN(generate.OSNConfig{Nodes: c.size, Seed: 7, WithAttrs: true})
				if mode == "rebuild" {
					g.SetDeltaLogLimit(-1)
				}
				n := FromGraph(g)
				owner, _ := n.UserID("u000010")
				if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
					b.Fatal(err)
				}
				if err := n.UseEngine(c.kind); err != nil {
					b.Fatal(err)
				}
				pairs := workload.HitPairs(g, 64, 2, 7)
				x, _ := n.UserID("u000001")
				y, _ := n.UserID("u000002")
				// Warm: publish twice so the delta arm's ping-pong has a
				// retired spare, and lazily built structures exist.
				for i := 0; i < 2; i++ {
					if err := n.Relate(x, y, "bench-touch"); err != nil {
						b.Fatal(err)
					}
					if _, err := n.CanAccess("r", pairs[0].Requester); err != nil {
						b.Fatal(err)
					}
					if err := n.Unrelate(x, y, "bench-touch"); err != nil {
						b.Fatal(err)
					}
					if _, err := n.CanAccess("r", pairs[0].Requester); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if i%2 == 0 {
						err = n.Relate(x, y, "bench-touch")
					} else {
						err = n.Unrelate(x, y, "bench-touch")
					}
					if err != nil {
						b.Fatal(err)
					}
					if _, err := n.CanAccess("r", pairs[i%len(pairs)].Requester); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchMutate compares k interleaved mutate/read cycles (k
// republications) against one Batch of k mutations followed by one read
// (one republication), on the online engine.
func BenchmarkBatchMutate(b *testing.B) {
	const size, k = 20000, 16
	setup := func(b *testing.B) (*Network, []workload.Pair, UserID, UserID) {
		b.Helper()
		g := generate.OSN(generate.OSNConfig{Nodes: size, Seed: 11})
		n := FromGraph(g)
		owner, _ := n.UserID("u000010")
		if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
			b.Fatal(err)
		}
		pairs := workload.HitPairs(g, 64, 2, 7)
		if _, err := n.CanAccess("r", pairs[0].Requester); err != nil {
			b.Fatal(err)
		}
		x, _ := n.UserID("u000001")
		y, _ := n.UserID("u000002")
		return n, pairs, x, y
	}
	b.Run("singles", func(b *testing.B) {
		n, pairs, x, y := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				label := fmt.Sprintf("bench-%d", j)
				var err error
				if i%2 == 0 {
					err = n.Relate(x, y, label)
				} else {
					err = n.Unrelate(x, y, label)
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := n.CanAccess("r", pairs[j%len(pairs)].Requester); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		n, pairs, x, y := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := n.Batch(func(tx *Tx) error {
				for j := 0; j < k; j++ {
					label := fmt.Sprintf("bench-%d", j)
					if i%2 == 0 {
						if err := tx.Relate(x, y, label); err != nil {
							return err
						}
					} else if err := tx.Unrelate(x, y, label); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.CanAccess("r", pairs[i%len(pairs)].Requester); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTwoHopInsert measures incremental 2-hop maintenance (one edge
// insertion with resumed pruned BFS) against the full rebuild it replaces.
func BenchmarkTwoHopInsert(b *testing.B) {
	g := benchGraph("follow")
	l := linegraph.Build(g, linegraph.Opts{})
	base := l.D
	rev := base.Reverse()
	cover := twohop.Pruned(base)
	rng := 12345
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Pseudo-random existing vertices; the edge may duplicate, which
			// Insert handles as already-covered.
			rng = rng*1103515245 + 12345
			u := (rng >> 16 & 0x7fff) % base.N()
			rng = rng*1103515245 + 12345
			v := (rng >> 16 & 0x7fff) % base.N()
			base.AddEdge(u, v)
			rev.AddEdge(v, u)
			cover.Insert(base, rev, u, v)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			twohop.Pruned(base)
		}
	})
}

// BenchmarkScenarioMixes measures per-operation cost of the acbench
// workload mixes (internal/workload) against the embedded facade with the
// paper's join index — the same operation streams cmd/acbench drives at
// scale, here as fixed-op-count testing.B targets.
func BenchmarkScenarioMixes(b *testing.B) {
	base := benchGraph("social")
	specs := workload.Resources(base, 16, 7)
	for _, mix := range workload.Mixes() {
		b.Run(mix.Name, func(b *testing.B) {
			n := FromGraph(base.Clone())
			if err := n.Batch(func(tx *Tx) error {
				for _, spec := range specs {
					if _, err := tx.Share(spec.Name, spec.Owner, spec.Paths...); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			if err := n.UseEngine(Index); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(base, mix, workload.GenConfig{Resources: specs}, 11)
			rules := make([][]string, len(specs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				spec := specs[op.Resource]
				var err error
				switch op.Kind {
				case workload.OpCheck:
					_, err = n.CanAccess(spec.Name, op.Requester)
				case workload.OpCheckBatch:
					_, err = n.CanAccessAll(spec.Name, op.Requesters)
				case workload.OpAudience:
					_, err = n.Audience(spec.Name)
				case workload.OpRelate:
					err = n.Relate(op.From, op.To, op.RelType)
				case workload.OpUnrelate:
					err = n.Unrelate(op.From, op.To, op.RelType)
				case workload.OpShare:
					var rule string
					if rule, err = n.Share(spec.Name, op.Owner, op.Paths...); err == nil {
						rules[op.Resource] = append(rules[op.Resource], rule)
					}
				case workload.OpRevoke:
					if q := rules[op.Resource]; len(q) > 0 {
						n.Revoke(spec.Name, q[0])
						rules[op.Resource] = q[1:]
					}
				}
				if err != nil {
					b.Fatal(op.Kind, err)
				}
			}
		})
	}
}

// BenchmarkCanAccessZeroAlloc measures the warmed flat-search hot path on a
// bare engine: plan cache, CSR and pooled scratch all hot, so with -benchmem
// this reports 0 B/op and 0 allocs/op (the guarantee alloc_test.go enforces
// as a hard assertion).
func BenchmarkCanAccessZeroAlloc(b *testing.B) {
	g := benchGraph("social")
	e := search.New(g)
	g.CSR()
	p, err := pathexpr.Parse("friend+[1,2]")
	if err != nil {
		b.Fatal(err)
	}
	pairs := workload.HitPairs(g, 64, 2, 7)
	for i := 0; i < 8; i++ {
		if _, err := e.Reachable(pairs[i].Owner, pairs[i].Requester, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i%len(pairs)]
		if _, err := e.Reachable(pr.Owner, pr.Requester, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAudienceIncremental measures the audience read after a mutation,
// which forces a snapshot republication per iteration: the incremental arm
// advances the audience cache through the recorded deltas (the O(Δ) path),
// the rebuild arm disables the delta log so every iteration recomputes
// graph, evaluator and audiences from scratch. The gap between the arms is
// what incremental audience maintenance buys on a churn workload.
func BenchmarkAudienceIncremental(b *testing.B) {
	for _, arm := range []string{"incremental", "rebuild"} {
		b.Run(arm, func(b *testing.B) {
			g := benchGraph("social")
			n := FromGraph(g)
			if arm == "rebuild" {
				n.Graph().SetDeltaLogLimit(-1)
			}
			owner, _ := n.UserID("u000010")
			if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
				b.Fatal(err)
			}
			peer, _ := n.UserID("u000011")
			if _, err := n.Audience("r"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					err = n.Relate(owner, peer, "colleague")
				} else {
					err = n.Unrelate(owner, peer, "colleague")
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := n.Audience("r"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerRouting compares a statically-evaluated network against
// the same network with cost-based planner routing on a mixed query shape:
// point checks (decision-cache friendly), path checks with asymmetric
// endpoints (reverse-routing friendly) and audience scans (audience-cache
// friendly). The planner arm should never trail the static arm by more
// than its per-query routing overhead.
func BenchmarkPlannerRouting(b *testing.B) {
	arms := []struct {
		name string
		opts []Option
	}{
		{"static-online", nil},
		{"planner", []Option{WithPlanner(PlannerOptions{})}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			g := benchGraph("social")
			n := FromGraph(g, arm.opts...)
			owner, _ := n.UserID("u000010")
			if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
				b.Fatal(err)
			}
			pairs := workload.HitPairs(g, 256, 2, 7)
			// Warm: publish the snapshot, fill the decision cache and
			// materialize the audience sets outside the timer.
			for _, p := range pairs {
				if _, err := n.CanAccess("r", p.Requester); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := n.Audience("r"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				if _, err := n.CanAccess("r", p.Requester); err != nil {
					b.Fatal(err)
				}
				if _, err := n.CheckPath(p.Owner, p.Requester, "friend+[1,2]"); err != nil {
					b.Fatal(err)
				}
				if i%16 == 0 {
					if _, err := n.Audience("r"); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDecisionCacheChurn measures the warmed check latency right
// after a mutation, by how the mutation's labels relate to the cached
// decisions' tags. "no-mutation" is the pure cache-hit floor. "unrelated"
// toggles an edge whose label no rule mentions: per-delta invalidation
// must carry every entry across the republication, keeping the warmed
// reads within the same order as the floor (the acceptance bound is 2x).
// "related" toggles an edge on the rule's own label, evicting every
// tagged entry — the price of correctness, paid only when it must be.
// The untimed post-mutation read pays the republication itself; the timer
// covers only the warmed decision sweep.
func BenchmarkDecisionCacheChurn(b *testing.B) {
	for _, arm := range []struct{ name, label string }{
		{"no-mutation", ""},
		{"unrelated", "bench-unrelated"},
		{"related", "friend"},
	} {
		b.Run(arm.name, func(b *testing.B) {
			g := benchGraph("social")
			n := FromGraph(g)
			owner, _ := n.UserID("u000010")
			if _, err := n.Share("r", owner, "friend+[1,2]"); err != nil {
				b.Fatal(err)
			}
			pairs := workload.HitPairs(g, 256, 2, 7)
			x, _ := n.UserID("u000001")
			y, _ := n.UserID("u000002")
			sweep := func() {
				for _, p := range pairs {
					if _, err := n.CanAccess("r", p.Requester); err != nil {
						b.Fatal(err)
					}
				}
			}
			// Warm both ping-pong snapshots' decision caches: the carried
			// cache is the retired spare's, one publication behind.
			for i := 0; i < 2; i++ {
				if err := n.Relate(x, y, "bench-warm"); err != nil {
					b.Fatal(err)
				}
				sweep()
				if err := n.Unrelate(x, y, "bench-warm"); err != nil {
					b.Fatal(err)
				}
				sweep()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if arm.label != "" {
					b.StopTimer()
					var err error
					if i%2 == 0 {
						err = n.Relate(x, y, arm.label)
					} else {
						err = n.Unrelate(x, y, arm.label)
					}
					if err != nil {
						b.Fatal(err)
					}
					// Pay the republication (spare advance + cache carry)
					// outside the timer; the sweep below measures warmed
					// decisions only.
					if _, err := n.CanAccess("r", pairs[0].Requester); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				sweep()
			}
			st := n.Stats()
			if b.N > 0 {
				b.ReportMetric(float64(st.DecisionCacheEvictions)/float64(b.N), "evictions/op")
			}
		})
	}
}
