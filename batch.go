package reachac

import (
	"fmt"

	"reachac/internal/core"
	"reachac/internal/graph"
	"reachac/internal/wal"
)

// Tx batches mutations under a single lock hold so that interleaved readers
// trigger at most one snapshot republication for the whole batch, and the
// delta window is consumed in one O(Δ) advance instead of one per call. On a
// durable network the batch additionally commits as ONE atomic write-ahead
// log record group: either every operation of the batch is durable or none
// is, and recovery never observes a half-applied batch. A Tx is only valid
// inside the Batch callback that created it and must not be used
// concurrently or retained.
type Tx struct {
	n *Network
	// undo holds the inverse of each applied mutation, pushed in order and
	// run in reverse when the callback (or the WAL commit) fails.
	undo []func()
	// ops accumulates the write-ahead log record of each applied mutation,
	// in order; Batch appends them as one atomic record group at commit.
	ops []wal.Op
	// ghosts counts ops kept only for replay alignment (node additions of
	// failed sub-transactions); Stats excludes them from Mutations.
	ghosts int
}

// Batch runs fn with a transaction handle, applying all its mutations under
// one lock acquisition and — on a durable network — committing them as one
// atomic WAL record group, fsynced before Batch returns (per the sync
// policy). If fn returns an error, or the WAL append fails, the invertible
// mutations already applied (Relate, Unrelate, Share, Revoke) are rolled
// back in reverse order and the error is returned. AddUser is not
// invertible (the graph never removes nodes); users created by a failed
// batch remain as isolated members, which no path expression can ever
// match — on a durable network those residual additions are still logged,
// keeping node-ID allocation identical under replay. Because a failed WAL
// append can leave in-memory state the log missed, it poisons a durable
// network read-only — acknowledging later mutations could diverge from
// what recovery rebuilds.
//
// Reads against the currently published snapshot proceed untouched, but
// once the batch's first mutation lands, a reader that needs a fresh
// snapshot waits for the whole batch before republishing (once) — so keep
// callbacks short and precompute outside the batch.
func (n *Network) Batch(fn func(*Tx) error) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.writeGuardLocked(); err != nil {
		return err
	}
	tx := &Tx{n: n}
	if err := fn(tx); err != nil {
		tx.rollback()
		// The non-invertible node additions survive the rollback in memory,
		// so they must survive in the log too: if they were dropped, the
		// next node would take ID N live but N-k on replay, and every later
		// acknowledged record referencing it would recover against the
		// wrong user. Commit them (alone) as their own group.
		if ghosts := tx.ghostOps(); len(ghosts) > 0 {
			if cerr := n.commitLocked(ghosts); cerr != nil {
				return fmt.Errorf("%w (and logging the batch's residual node additions failed: %v)", err, cerr)
			}
		}
		return err
	}
	if err := n.commitLocked(tx.ops); err != nil {
		// The append failed and poisoned the network read-only; rollback
		// restores what it can (any residual node additions are confined to
		// the now-unacknowledgeable in-memory state).
		tx.rollback()
		return err
	}
	if acked := len(tx.ops) - tx.ghosts; acked > 0 {
		n.ctr.batches.Add(1)
		n.ctr.mutations.Add(uint64(acked))
	}
	return nil
}

// Sub runs fn as a sub-transaction of the batch: on error, the mutations fn
// applied are rolled back and their log records dropped, while everything
// the enclosing batch applied before (and applies after) stands. It is the
// group-commit coalescing hook: a server can fold the mutation requests of
// many independent writers into ONE Batch — one atomic record group, one
// fsync — yet still fail each request individually instead of aborting the
// whole group. Node additions made by a failed sub-transaction follow the
// Batch rule for non-invertible mutations: the nodes remain (isolated, never
// matching any path) and their records stay in the group, keeping replay
// node-ID allocation aligned with memory.
func (tx *Tx) Sub(fn func(*Tx) error) error {
	undoMark, opMark := len(tx.undo), len(tx.ops)
	err := fn(tx)
	if err == nil {
		return nil
	}
	for i := len(tx.undo) - 1; i >= undoMark; i-- {
		tx.undo[i]()
	}
	tx.undo = tx.undo[:undoMark]
	kept := tx.ops[:opMark]
	for _, op := range tx.ops[opMark:] {
		if op.Kind == wal.OpGraph && op.Delta != nil && op.Delta.Op == graph.OpAddNode {
			kept = append(kept, op)
			tx.ghosts++
		}
	}
	tx.ops = kept
	return err
}

// ghostOps returns the batch's non-invertible operations — the node
// additions that rollback cannot remove and that therefore must still be
// logged when the batch fails.
func (tx *Tx) ghostOps() []wal.Op {
	var out []wal.Op
	for _, op := range tx.ops {
		if op.Kind == wal.OpGraph && op.Delta != nil && op.Delta.Op == graph.OpAddNode {
			out = append(out, op)
		}
	}
	return out
}

// rollback runs the recorded undos in reverse order.
func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i]()
	}
}

// UserID resolves a member name inside the batch, observing users added
// earlier in the same batch — which Network.UserID, blocked on the batch's
// lock, could not show until commit.
func (tx *Tx) UserID(name string) (UserID, bool) {
	return tx.n.g.NodeByName(name)
}

// AddUser is Network.AddUser within the batch.
func (tx *Tx) AddUser(name string, attrs ...Attr) (UserID, error) {
	id, err := tx.n.addUserLocked(name, attrs)
	if err != nil {
		return id, err
	}
	tx.ops = append(tx.ops, wal.GraphOp(graph.Delta{
		Op:    graph.OpAddNode,
		Name:  name,
		Attrs: tx.n.g.Node(id).Attrs,
	}))
	return id, nil
}

// Relate is Network.Relate within the batch; rolled back on batch failure.
func (tx *Tx) Relate(from, to UserID, relType string) error {
	if _, err := tx.n.g.AddEdge(from, to, relType); err != nil {
		g := tx.n.g
		switch {
		case !g.ValidNode(from) || !g.ValidNode(to):
			return fmt.Errorf("reachac: relate %d -> %d: %w", from, to, ErrUnknownUser)
		case from == to:
			return fmt.Errorf("reachac: relate %d to themself: %w", from, ErrSelfRelationship)
		case g.HasEdge(from, to, relType):
			return fmt.Errorf("reachac: %s relationship %d -> %d: %w", relType, from, to, ErrDuplicateRelationship)
		}
		return err
	}
	// Undo by (from, to, label) identity, not EdgeID: a later Unrelate of
	// the same relationship in this batch would re-add it under a fresh ID
	// during its own (earlier-running) undo.
	tx.undo = append(tx.undo, func() {
		if l, ok := tx.n.g.LookupLabel(relType); ok {
			if e := tx.n.g.FindEdge(from, to, l); e != graph.InvalidEdge {
				_ = tx.n.g.RemoveEdge(e)
			}
		}
	})
	tx.ops = append(tx.ops, wal.GraphOp(graph.Delta{
		Op: graph.OpAddEdge, From: from, To: to, Label: relType,
	}))
	return nil
}

// Unrelate is Network.Unrelate within the batch; rolled back (the edge is
// re-added, with its weight) on batch failure.
func (tx *Tx) Unrelate(from, to UserID, relType string) error {
	l, ok := tx.n.g.LookupLabel(relType)
	if !ok {
		return fmt.Errorf("reachac: no relationships of type %q: %w", relType, ErrUnknownRelationship)
	}
	e := tx.n.g.FindEdge(from, to, l)
	if e == graph.InvalidEdge {
		return fmt.Errorf("reachac: no %s relationship %d -> %d: %w", relType, from, to, ErrUnknownRelationship)
	}
	rec := tx.n.g.Edge(e)
	if err := tx.n.g.RemoveEdge(e); err != nil {
		return err
	}
	tx.undo = append(tx.undo, func() {
		_, _ = tx.n.g.AddWeightedEdge(rec.From, rec.To, relType, rec.Weight)
	})
	tx.ops = append(tx.ops, wal.GraphOp(graph.Delta{
		Op: graph.OpRemoveEdge, From: from, To: to, Label: relType,
	}))
	return nil
}

// Share is Network.Share within the batch; on batch failure the added rule
// is revoked and, if this Share registered the resource, the registration
// is removed again too.
func (tx *Tx) Share(resource string, owner UserID, paths ...string) (string, error) {
	_, existed := tx.n.store.Load().Owner(core.ResourceID(resource))
	id, conds, err := tx.n.shareLocked(resource, owner, paths)
	if err != nil {
		return "", err
	}
	tx.undo = append(tx.undo, func() {
		s := tx.n.store.Load()
		s.RemoveRule(core.ResourceID(resource), id)
		if !existed {
			s.Unregister(core.ResourceID(resource))
		}
	})
	tx.ops = append(tx.ops, wal.ShareOp(resource, owner, id, conds))
	return id, nil
}

// Revoke is Network.Revoke within the batch; the removed rule is re-added
// on batch failure.
func (tx *Tx) Revoke(resource, ruleID string) bool {
	store := tx.n.store.Load()
	var removed *core.Rule
	for _, r := range store.RulesFor(core.ResourceID(resource)) {
		if r.ID == ruleID {
			removed = r
			break
		}
	}
	if !store.RemoveRule(core.ResourceID(resource), ruleID) {
		return false
	}
	if removed != nil {
		tx.undo = append(tx.undo, func() { _ = store.AddRule(removed) })
	}
	tx.ops = append(tx.ops, wal.RevokeOp(resource, ruleID))
	return true
}
