package reachac

import (
	"fmt"

	"reachac/internal/core"
	"reachac/internal/graph"
)

// Tx batches mutations under a single lock hold so that interleaved readers
// trigger at most one snapshot republication for the whole batch, and the
// delta window is consumed in one O(Δ) advance instead of one per call. A
// Tx is only valid inside the Batch callback that created it and must not
// be used concurrently or retained.
type Tx struct {
	n *Network
	// undo holds the inverse of each applied mutation, pushed in order and
	// run in reverse when the callback fails.
	undo []func()
}

// Batch runs fn with a transaction handle, applying all its mutations under
// one lock acquisition. If fn returns an error, the invertible mutations
// already applied (Relate, Unrelate, Share, Revoke) are rolled back in
// reverse order and the error is returned. AddUser is not invertible (the
// graph never removes nodes); users created by a failed batch remain as
// isolated members, which no path expression can ever match. Resource
// registration performed by Share likewise persists, though the rule itself
// is rolled back.
//
// Reads against the currently published snapshot proceed untouched, but
// once the batch's first mutation lands, a reader that needs a fresh
// snapshot waits for the whole batch before republishing (once) — so keep
// callbacks short and precompute outside the batch.
func (n *Network) Batch(fn func(*Tx) error) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	tx := &Tx{n: n}
	if err := fn(tx); err != nil {
		for i := len(tx.undo) - 1; i >= 0; i-- {
			tx.undo[i]()
		}
		return err
	}
	return nil
}

// AddUser is Network.AddUser within the batch.
func (tx *Tx) AddUser(name string, attrs ...Attr) (UserID, error) {
	return tx.n.addUserLocked(name, attrs)
}

// Relate is Network.Relate within the batch; rolled back on batch failure.
func (tx *Tx) Relate(from, to UserID, relType string) error {
	if _, err := tx.n.g.AddEdge(from, to, relType); err != nil {
		return err
	}
	// Undo by (from, to, label) identity, not EdgeID: a later Unrelate of
	// the same relationship in this batch would re-add it under a fresh ID
	// during its own (earlier-running) undo.
	tx.undo = append(tx.undo, func() {
		if l, ok := tx.n.g.LookupLabel(relType); ok {
			if e := tx.n.g.FindEdge(from, to, l); e != graph.InvalidEdge {
				_ = tx.n.g.RemoveEdge(e)
			}
		}
	})
	return nil
}

// Unrelate is Network.Unrelate within the batch; rolled back (the edge is
// re-added, with its weight) on batch failure.
func (tx *Tx) Unrelate(from, to UserID, relType string) error {
	l, ok := tx.n.g.LookupLabel(relType)
	if !ok {
		return fmt.Errorf("reachac: unknown relationship type %q", relType)
	}
	e := tx.n.g.FindEdge(from, to, l)
	if e == graph.InvalidEdge {
		return fmt.Errorf("reachac: no %s relationship %d -> %d", relType, from, to)
	}
	rec := tx.n.g.Edge(e)
	if err := tx.n.g.RemoveEdge(e); err != nil {
		return err
	}
	tx.undo = append(tx.undo, func() {
		_, _ = tx.n.g.AddWeightedEdge(rec.From, rec.To, relType, rec.Weight)
	})
	return nil
}

// Share is Network.Share within the batch; the added rule is revoked on
// batch failure (the resource registration persists).
func (tx *Tx) Share(resource string, owner UserID, paths ...string) (string, error) {
	id, err := tx.n.Share(resource, owner, paths...)
	if err != nil {
		return "", err
	}
	tx.undo = append(tx.undo, func() { tx.n.store.Load().RemoveRule(core.ResourceID(resource), id) })
	return id, nil
}

// Revoke is Network.Revoke within the batch; the removed rule is re-added
// on batch failure.
func (tx *Tx) Revoke(resource, ruleID string) bool {
	store := tx.n.store.Load()
	var removed *core.Rule
	for _, r := range store.RulesFor(core.ResourceID(resource)) {
		if r.ID == ruleID {
			removed = r
			break
		}
	}
	if !store.RemoveRule(core.ResourceID(resource), ruleID) {
		return false
	}
	if removed != nil {
		tx.undo = append(tx.undo, func() { _ = store.AddRule(removed) })
	}
	return true
}
