package reachac

import (
	"time"

	"reachac/internal/pathexpr"
	"reachac/internal/planner"
	"reachac/internal/search"
)

// routedEval is the planner's per-query router, wrapped around one
// snapshot's primary evaluator. For each reachability query it picks the
// cheapest execution on the current snapshot:
//
//  1. the snapshot's audience cache, when the owner's audience for the
//     path is already materialized (an O(1) bitset probe — audience
//     queries warm it for the point checks that follow);
//  2. the flat product-BFS from whichever endpoint admits fewer
//     first-step traversals (the CSR makes both counts O(1));
//  3. the primary evaluator, raced ε-greedily against the flat search on
//     heavy engines so the EWMAs keep tracking which side wins.
//
// Every strategy returns identical decisions (the differential suite pins
// this), so routing only moves cost around. One routedEval is built per
// snapshot publication; the Planner behind it is network-lifetime, so the
// learned latencies survive republication.
type routedEval struct {
	pl      *planner.Planner
	primary Evaluator
	online  *search.Engine
	aud     *search.AudienceCache
	kind    planner.Kind
}

// Reachable implements core.Evaluator with cost-based routing. Invalid
// inputs delegate straight to the primary evaluator for uniform error
// wording.
func (r *routedEval) Reachable(owner, requester UserID, p *pathexpr.Path) (bool, error) {
	g := r.aud.Graph()
	if !g.ValidNode(owner) || !g.ValidNode(requester) {
		return r.primary.Reachable(owner, requester, p)
	}
	if member, ok := r.aud.Peek(owner, requester, p); ok {
		r.pl.Route(planner.StratAudience)
		return member, nil
	}
	fwd, rev, err := r.online.RouteCosts(owner, requester, p)
	if err != nil {
		return r.primary.Reachable(owner, requester, p)
	}
	strat := r.pl.Choose(r.kind, fwd, rev)
	r.pl.Route(strat)
	if _, timed := r.pl.Next(); timed {
		start := time.Now()
		ok, err := r.exec(strat, owner, requester, p)
		r.pl.Observe(strat, time.Since(start))
		return ok, err
	}
	return r.exec(strat, owner, requester, p)
}

// exec runs one query with the chosen strategy.
func (r *routedEval) exec(strat planner.Strategy, owner, requester UserID, p *pathexpr.Path) (bool, error) {
	switch strat {
	case planner.StratPrimary:
		return r.primary.Reachable(owner, requester, p)
	case planner.StratFlatReverse:
		return r.online.ReachableReverse(owner, requester, p)
	default:
		return r.online.Reachable(owner, requester, p)
	}
}

// PlannerOptions configures planner-routed query execution for WithPlanner.
type PlannerOptions struct {
	// AutoMigrate lets the planner apply its whole-network engine
	// recommendations at publication time (switching n.kind as if by
	// UseEngine). When false the recommendation is only surfaced through
	// Stats.
	AutoMigrate bool
}

// WithPlanner enables cost-based per-query routing: every reachability
// query is answered by the cheapest of the audience cache, the flat search
// from either endpoint, or the selected engine, steered by observed
// latencies. Decisions are identical to the static engine's. It applies to
// New, FromGraph and Open.
func WithPlanner(o PlannerOptions) Option {
	return func(c *openConfig) {
		c.route = true
		c.planner = o
	}
}
