package reachac

import (
	"fmt"
	"testing"
)

// churnNetwork builds a small social network, selects the Closure engine
// (heavy: every mutation risks a full precompute rebuild) and then runs a
// mutation-heavy read/write trace long enough to close at least one of the
// planner's assessment windows.
func churnNetwork(t *testing.T, opts ...Option) *Network {
	t.Helper()
	n := New(opts...)
	const members = 16
	ids := make([]UserID, members)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("m%02d", i))
	}
	for i := 0; i < members; i++ {
		if err := n.Relate(ids[i], ids[(i+1)%members], "friend"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Share("album", ids[0], "friend+[1,3]"); err != nil {
		t.Fatal(err)
	}
	if err := n.UseEngine(Closure); err != nil {
		t.Fatal(err)
	}
	// ~25 reads per mutation: a 4% mutation fraction, over twice the
	// planner's migrate-to-online churn threshold, across several windows.
	for i := 0; i < 1600; i++ {
		if i%25 == 24 {
			var err error
			if (i/25)%2 == 0 {
				err = n.Relate(ids[1], ids[9], "colleague")
			} else {
				err = n.Unrelate(ids[1], ids[9], "colleague")
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := n.CanAccess("album", ids[i%members]); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestPlannerAutoMigrate drives a churn-heavy workload on a heavy engine
// with auto-migration enabled and asserts the planner migrated the whole
// network to the online family, with the migration visible in Stats.
func TestPlannerAutoMigrate(t *testing.T) {
	n := churnNetwork(t, WithPlanner(PlannerOptions{AutoMigrate: true}))
	st := n.Stats()
	if st.PlannerMigrations == 0 {
		t.Fatalf("no migration applied under sustained churn: %+v", st)
	}
	if st.Engine != Online.String() {
		t.Fatalf("engine after migration = %q, want %q", st.Engine, Online.String())
	}
	if st.PlannerRecommended != Online.String() {
		t.Fatalf("recommended = %q, want %q", st.PlannerRecommended, Online.String())
	}
	// Decisions keep flowing on the migrated engine.
	if _, err := n.CanAccess("album", 1); err != nil {
		t.Fatal(err)
	}
}

// TestPlannerRecommendObservability runs the same churn trace without
// auto-migration: the engine must stay put while the recommendation is
// surfaced through Stats as pure observability.
func TestPlannerRecommendObservability(t *testing.T) {
	n := churnNetwork(t, WithPlanner(PlannerOptions{}))
	st := n.Stats()
	if st.PlannerMigrations != 0 {
		t.Fatalf("migration applied without AutoMigrate: %+v", st)
	}
	if st.Engine != Closure.String() {
		t.Fatalf("engine = %q, want %q (static)", st.Engine, Closure.String())
	}
	if st.PlannerRecommended != Online.String() {
		t.Fatalf("recommended = %q, want %q", st.PlannerRecommended, Online.String())
	}
	routes := st.PlannerRouteAudience + st.PlannerRouteFlatForward +
		st.PlannerRouteFlatReverse + st.PlannerRoutePrimary
	if routes == 0 {
		t.Fatal("no routed queries recorded")
	}
}

// TestPlannerKindOrdinalsMatch pins the ordinal correspondence the facade
// relies on when converting between EngineKind and planner.Kind.
func TestPlannerKindOrdinalsMatch(t *testing.T) {
	pairs := []struct {
		k EngineKind
		s string
	}{
		{Online, "online-bfs"}, {OnlineDFS, "online-dfs"}, {OnlineAdaptive, "online-adaptive"},
		{Closure, "closure"}, {Index, "join-index"}, {IndexPaperJoin, "join-index-paper"},
	}
	for i, p := range pairs {
		if int(p.k) != i {
			t.Fatalf("EngineKind %s ordinal = %d, want %d", p.s, int(p.k), i)
		}
		if p.k.String() != p.s {
			t.Fatalf("EngineKind %d = %q, want %q", i, p.k.String(), p.s)
		}
	}
}
