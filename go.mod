module reachac

go 1.24
