package reachac

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDifferentialDeltaVsRebuild replays one randomized mutation/query
// trace through two identical networks — one publishing snapshots via the
// delta-advance path, one with the delta log disabled so every publication
// pays the full clone+rebuild — across all six engine kinds, and asserts
// the decisions are identical at every step. This is the end-to-end
// guarantee that incremental publication is invisible to callers.
func TestDifferentialDeltaVsRebuild(t *testing.T) {
	kinds := []EngineKind{Online, OnlineDFS, OnlineAdaptive, Closure, Index, IndexPaperJoin}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(1000 + kind)))
			delta := New()
			rebuild := New()
			rebuild.Graph().SetDeltaLogLimit(-1)
			nets := []*Network{delta, rebuild}

			const members = 24
			ids := make([]UserID, members)
			for i := range ids {
				name := fmt.Sprintf("m%02d", i)
				for _, n := range nets {
					id := n.MustAddUser(name, IntAttr("age", 10+i*3))
					ids[i] = id
				}
			}
			type rel struct {
				from, to UserID
				label    string
			}
			labels := []string{"friend", "colleague", "parent"}
			var live []rel
			addRel := func(r rel) {
				e1 := delta.Relate(r.from, r.to, r.label)
				e2 := rebuild.Relate(r.from, r.to, r.label)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("Relate divergence: %v vs %v", e1, e2)
				}
				if e1 == nil {
					live = append(live, r)
				}
			}
			for i := 0; i < members; i++ {
				addRel(rel{ids[i], ids[(i+1)%members], "friend"})
			}
			for _, n := range nets {
				if _, err := n.Share("album", ids[0], "friend+[1,3]"); err != nil {
					t.Fatal(err)
				}
				if _, err := n.Share("album", ids[0], "colleague+[1]/friend+[1]"); err != nil {
					t.Fatal(err)
				}
				if err := n.UseEngine(kind); err != nil {
					t.Fatal(err)
				}
			}

			rounds := 60
			if kind == Index || kind == IndexPaperJoin {
				rounds = 25 // index rebuilds are the expensive arm
			}
			check := func(step string) {
				t.Helper()
				for s := 0; s < 6; s++ {
					req := ids[rng.Intn(members)]
					d1, err := delta.CanAccess("album", req)
					if err != nil {
						t.Fatalf("%s: delta CanAccess: %v", step, err)
					}
					d2, err := rebuild.CanAccess("album", req)
					if err != nil {
						t.Fatalf("%s: rebuild CanAccess: %v", step, err)
					}
					if d1.Effect != d2.Effect {
						t.Fatalf("%s: requester %d: delta=%v rebuild=%v", step, req, d1.Effect, d2.Effect)
					}
					o, r := ids[rng.Intn(members)], ids[rng.Intn(members)]
					p1, err := delta.CheckPath(o, r, "friend+[1,2]")
					if err != nil {
						t.Fatal(err)
					}
					p2, err := rebuild.CheckPath(o, r, "friend+[1,2]")
					if err != nil {
						t.Fatal(err)
					}
					if p1 != p2 {
						t.Fatalf("%s: CheckPath(%d,%d): delta=%v rebuild=%v", step, o, r, p1, p2)
					}
				}
			}
			check("initial")
			for round := 0; round < rounds; round++ {
				switch op := rng.Intn(10); {
				case op < 4: // add a relationship
					from, to := ids[rng.Intn(members)], ids[rng.Intn(members)]
					if from != to {
						addRel(rel{from, to, labels[rng.Intn(len(labels))]})
					}
				case op < 7: // remove a live relationship
					if len(live) > 0 {
						i := rng.Intn(len(live))
						r := live[i]
						e1 := delta.Unrelate(r.from, r.to, r.label)
						e2 := rebuild.Unrelate(r.from, r.to, r.label)
						if (e1 == nil) != (e2 == nil) {
							t.Fatalf("Unrelate divergence: %v vs %v", e1, e2)
						}
						live = append(live[:i], live[i+1:]...)
					}
				case op < 8: // add a member (node-only delta)
					name := fmt.Sprintf("x%03d", round)
					for _, n := range nets {
						n.MustAddUser(name)
					}
				case op < 9: // batched mutation burst
					from := ids[rng.Intn(members)]
					var errs [2]error
					for i, n := range nets {
						errs[i] = n.Batch(func(tx *Tx) error {
							for k := 1; k <= 3; k++ {
								to := ids[(int(from)+k*5)%members]
								if to == from {
									continue
								}
								if err := tx.Relate(from, to, "colleague"); err != nil {
									return err
								}
							}
							return nil
						})
					}
					// Identical traces fail identically; a failed batch is
					// rolled back, so both arms stay aligned either way.
					if (errs[0] == nil) != (errs[1] == nil) {
						t.Fatalf("Batch divergence: %v vs %v", errs[0], errs[1])
					}
					// Edges added here are never unrelated by the trace
					// (removals draw from `live` only), keeping bookkeeping
					// simple without losing alignment.
				default: // policy churn
					rid1, e1 := delta.Share("album", ids[0], "parent-[1]/friend+[1,2]")
					rid2, e2 := rebuild.Share("album", ids[0], "parent-[1]/friend+[1,2]")
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("Share divergence: %v vs %v", e1, e2)
					}
					if e1 == nil {
						check("policy-add")
						if delta.Revoke("album", rid1) != rebuild.Revoke("album", rid2) {
							t.Fatal("Revoke divergence")
						}
					}
				}
				check(fmt.Sprintf("round %d", round))
			}
		})
	}
}
