package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"reachac"
	"reachac/client"
	"reachac/internal/httpapi"
)

// fakeServer answers every request with one canned error response.
func fakeServer(t *testing.T, status int, body httpapi.ErrorBody, retryAfter string) *client.Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = writeJSON(w, body)
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func writeJSON(w http.ResponseWriter, v httpapi.ErrorBody) error {
	_, err := w.Write([]byte(`{"error":"` + v.Error + `","code":"` + v.Code + `"}`))
	return err
}

// TestErrorMapping pins that wire codes come back as the facade's sentinel
// errors under errors.Is, the whole point of the typed client.
func TestErrorMapping(t *testing.T) {
	cases := []struct {
		code     string
		status   int
		sentinel error
	}{
		{httpapi.CodeUnknownUser, http.StatusNotFound, reachac.ErrUnknownUser},
		{httpapi.CodeDuplicateUser, http.StatusConflict, reachac.ErrDuplicateUser},
		{httpapi.CodeUnknownResource, http.StatusNotFound, reachac.ErrUnknownResource},
		{httpapi.CodeUnknownRelationship, http.StatusNotFound, reachac.ErrUnknownRelationship},
		{httpapi.CodeDuplicateRelationship, http.StatusConflict, reachac.ErrDuplicateRelationship},
		{httpapi.CodeSelfRelationship, http.StatusBadRequest, reachac.ErrSelfRelationship},
		{httpapi.CodeResourceOwned, http.StatusConflict, reachac.ErrResourceOwned},
		{httpapi.CodeReadOnly, http.StatusServiceUnavailable, reachac.ErrReadOnly},
		{httpapi.CodeClosed, http.StatusServiceUnavailable, reachac.ErrClosed},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			c := fakeServer(t, tc.status, httpapi.ErrorBody{Error: "nope", Code: tc.code}, "")
			_, err := c.Check(context.Background(), "r", "u")
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("code %q: errors.Is(%v, %v) = false", tc.code, err, tc.sentinel)
			}
			var apiErr *client.Error
			if !errors.As(err, &apiErr) || apiErr.Status != tc.status || apiErr.Message != "nope" {
				t.Fatalf("As(*client.Error) = %+v", apiErr)
			}
			// No cross-talk: a code must match only its own sentinel.
			for _, other := range cases {
				if other.sentinel != tc.sentinel && errors.Is(err, other.sentinel) {
					t.Fatalf("code %q also matched %v", tc.code, other.sentinel)
				}
			}
		})
	}
}

// TestOverloadedMapping pins the load-shedding contract: 503 + code
// overloaded is client.ErrOverloaded carrying the Retry-After hint.
func TestOverloadedMapping(t *testing.T) {
	c := fakeServer(t, http.StatusServiceUnavailable,
		httpapi.ErrorBody{Error: "queue full", Code: httpapi.CodeOverloaded}, "2")
	err := c.Relate(context.Background(), "a", "b", "friend")
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("errors.Is(ErrOverloaded) = false for %v", err)
	}
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After not surfaced: %+v", apiErr)
	}
}

// TestBadAddress pins New's address validation and normalization.
func TestBadAddress(t *testing.T) {
	if _, err := client.New("://nope"); err == nil {
		t.Fatal("malformed address accepted")
	}
	if _, err := client.New(""); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := client.New("localhost:8708"); err != nil {
		t.Fatalf("bare host:port rejected: %v", err)
	}
	c, err := client.New("localhost:8708/")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.BaseURL(); got != "http://localhost:8708" {
		t.Fatalf("BaseURL = %q, want normalized http://localhost:8708", got)
	}
}
