// Package client is the typed Go client for the acserverd HTTP API. It
// mirrors the reachac facade's read and mutation surface over the wire and
// maps the server's error codes back onto the facade's sentinel errors, so
// code written against a local Network ports to a remote one with the same
// errors.Is checks:
//
//	c, _ := client.New("http://localhost:8708")
//	if _, err := c.AddUser(ctx, "alice", nil); errors.Is(err, reachac.ErrDuplicateUser) { ... }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"reachac"
	"reachac/internal/httpapi"
)

// Error is the decoded form of a non-2xx API response.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code (httpapi.Code*).
	Code string
	// Message is the server's human-readable error text.
	Message string
	// RetryAfter is the server's backoff hint on 503 responses (zero when
	// absent).
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("acserverd: %s (HTTP %d, %s)", e.Message, e.Status, e.Code)
}

// Is maps wire error codes onto the reachac sentinel errors, so callers
// classify remote failures exactly like local ones.
func (e *Error) Is(target error) bool {
	switch target {
	case reachac.ErrUnknownUser:
		return e.Code == httpapi.CodeUnknownUser
	case reachac.ErrDuplicateUser:
		return e.Code == httpapi.CodeDuplicateUser
	case reachac.ErrUnknownResource:
		return e.Code == httpapi.CodeUnknownResource
	case reachac.ErrUnknownRelationship:
		return e.Code == httpapi.CodeUnknownRelationship
	case reachac.ErrDuplicateRelationship:
		return e.Code == httpapi.CodeDuplicateRelationship
	case reachac.ErrSelfRelationship:
		return e.Code == httpapi.CodeSelfRelationship
	case reachac.ErrResourceOwned:
		return e.Code == httpapi.CodeResourceOwned
	case reachac.ErrReadOnly:
		return e.Code == httpapi.CodeReadOnly
	case reachac.ErrClosed:
		return e.Code == httpapi.CodeClosed
	}
	return false
}

// ErrOverloaded matches responses shed by the server's admission control
// (full mutation queue, saturated check limiter); retry after
// Error.RetryAfter.
var ErrOverloaded = errors.New("server overloaded")

// Decision is the wire form of one access decision; see httpapi.Decision.
type Decision = httpapi.Decision

// Stats is the combined engine + serving-layer counters; see
// httpapi.StatsResponse.
type Stats = httpapi.StatsResponse

// Health is the health endpoint's report; see httpapi.HealthResponse.
type Health = httpapi.HealthResponse

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// Client talks to one acserverd instance. It is safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	// staleMS is the replica-staleness bound the most recent response
	// carried (see httpapi.HeaderStaleness); -1 until a follower answers.
	staleMS atomic.Int64
}

// BaseURL returns the normalized server address the client targets.
func (c *Client) BaseURL() string { return c.base }

// New returns a client for the server at base, e.g. "http://host:8708"
// (a bare "host:port" gets an http:// scheme).
func New(base string, opts ...Option) (*Client, error) {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("client: bad server address %q: %w", base, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: server address %q has no host", base)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), http: &http.Client{Timeout: 30 * time.Second}}
	c.staleMS.Store(-1)
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// do issues one request and decodes the response into out (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out any) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if v := resp.Header.Get(httpapi.HeaderStaleness); v != "" {
		if ms, perr := strconv.ParseInt(v, 10, 64); perr == nil {
			c.staleMS.Store(ms)
		}
	}
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *Error (wrapping
// ErrOverloaded for shed load, so errors.Is(err, client.ErrOverloaded)
// works alongside the sentinel mapping).
func decodeError(resp *http.Response) error {
	apiErr := &Error{Status: resp.StatusCode}
	var body httpapi.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil {
		apiErr.Code, apiErr.Message = body.Code, body.Error
	}
	if apiErr.Message == "" {
		apiErr.Message = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if apiErr.Code == httpapi.CodeOverloaded {
		return fmt.Errorf("%w: %w", ErrOverloaded, apiErr)
	}
	return apiErr
}

// Staleness reports the replica-staleness bound carried by the most recent
// response: how long before answering the serving replica last heard from
// its leader. ok is false until the client has talked to a follower (leaders
// and standalone servers send no bound — their answers are current).
func (c *Client) Staleness() (time.Duration, bool) {
	ms := c.staleMS.Load()
	if ms < 0 {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Health fetches the liveness and recovery report.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var out Health
	err := c.do(ctx, http.MethodGet, httpapi.PathHealth, nil, nil, &out)
	return out, err
}

// Stats fetches the engine and serving-layer counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, httpapi.PathStats, nil, nil, &out)
	return out, err
}

// AddUser creates a member with optional attributes (string, numeric or
// bool values) and returns its ID.
func (c *Client) AddUser(ctx context.Context, name string, attrs map[string]any) (reachac.UserID, error) {
	var out httpapi.UserResponse
	err := c.do(ctx, http.MethodPost, httpapi.PathUsers, nil, httpapi.AddUserRequest{Name: name, Attrs: attrs}, &out)
	return reachac.UserID(out.ID), err
}

// UserID resolves a member name.
func (c *Client) UserID(ctx context.Context, name string) (reachac.UserID, error) {
	var out httpapi.UserResponse
	err := c.do(ctx, http.MethodGet, httpapi.PathUsers+"/"+url.PathEscape(name), nil, nil, &out)
	return reachac.UserID(out.ID), err
}

// Relate adds a directed typed relationship between named members.
func (c *Client) Relate(ctx context.Context, from, to, relType string) error {
	return c.do(ctx, http.MethodPost, httpapi.PathRelationships, nil,
		httpapi.RelateRequest{From: from, To: to, Type: relType}, nil)
}

// RelateMutual adds the relationship in both directions atomically.
func (c *Client) RelateMutual(ctx context.Context, a, b, relType string) error {
	return c.do(ctx, http.MethodPost, httpapi.PathRelationships, nil,
		httpapi.RelateRequest{From: a, To: b, Type: relType, Mutual: true}, nil)
}

// Unrelate removes a relationship.
func (c *Client) Unrelate(ctx context.Context, from, to, relType string) error {
	return c.do(ctx, http.MethodDelete, httpapi.PathRelationships, nil,
		httpapi.UnrelateRequest{From: from, To: to, Type: relType}, nil)
}

// Share attaches one access rule (all paths must hold) to resource,
// registering it to owner on first use, and returns the rule ID.
func (c *Client) Share(ctx context.Context, resource, owner string, paths ...string) (string, error) {
	var out httpapi.ShareResponse
	err := c.do(ctx, http.MethodPost, httpapi.PathShare, nil,
		httpapi.ShareRequest{Resource: resource, Owner: owner, Paths: paths}, &out)
	return out.Rule, err
}

// Revoke detaches a rule, reporting whether it existed.
func (c *Client) Revoke(ctx context.Context, resource, rule string) (bool, error) {
	var out httpapi.RevokeResponse
	err := c.do(ctx, http.MethodPost, httpapi.PathRevoke, nil,
		httpapi.RevokeRequest{Resource: resource, Rule: rule}, &out)
	return out.Removed, err
}

// Check decides whether requester may access resource.
func (c *Client) Check(ctx context.Context, resource, requester string) (Decision, error) {
	var out Decision
	q := url.Values{"resource": {resource}, "requester": {requester}}
	err := c.do(ctx, http.MethodGet, httpapi.PathCheck, q, nil, &out)
	return out, err
}

// CheckBatch decides one resource for many requesters against a single
// consistent snapshot; the result is index-aligned with requesters.
func (c *Client) CheckBatch(ctx context.Context, resource string, requesters []string) ([]Decision, error) {
	var out httpapi.CheckBatchResponse
	err := c.do(ctx, http.MethodPost, httpapi.PathCheckBatch, nil,
		httpapi.CheckBatchRequest{Resource: resource, Requesters: requesters}, &out)
	return out.Decisions, err
}

// Audience lists every member the resource's rules admit.
func (c *Client) Audience(ctx context.Context, resource string) ([]string, error) {
	var out httpapi.UsersResponse
	q := url.Values{"resource": {resource}}
	err := c.do(ctx, http.MethodGet, httpapi.PathAudience, q, nil, &out)
	return out.Users, err
}

// Reach answers a raw reachability query: does a path matching expr lead
// from owner to requester?
func (c *Client) Reach(ctx context.Context, owner, requester, expr string) (bool, error) {
	var out httpapi.ReachResponse
	q := url.Values{"owner": {owner}, "requester": {requester}, "path": {expr}}
	err := c.do(ctx, http.MethodGet, httpapi.PathReach, q, nil, &out)
	return out.Reachable, err
}

// ReachAudience lists every member a path expression reaches from owner.
func (c *Client) ReachAudience(ctx context.Context, owner, expr string) ([]string, error) {
	var out httpapi.UsersResponse
	q := url.Values{"owner": {owner}, "path": {expr}}
	err := c.do(ctx, http.MethodGet, httpapi.PathReachAudience, q, nil, &out)
	return out.Users, err
}

// Audit fetches the retained decision tail, oldest first; n bounds the
// length (0 means everything retained).
func (c *Client) Audit(ctx context.Context, n int) ([]Decision, error) {
	var out httpapi.AuditResponse
	q := url.Values{}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	err := c.do(ctx, http.MethodGet, httpapi.PathAudit, q, nil, &out)
	return out.Decisions, err
}

// ShardExpand advances one round of a distributed reachability search on the
// server's local subgraph. Shard-router internal; see reachac.ShardExpandRequest.
func (c *Client) ShardExpand(ctx context.Context, req httpapi.ShardExpandRequest) (httpapi.ShardExpandResponse, error) {
	var out httpapi.ShardExpandResponse
	err := c.do(ctx, http.MethodPost, httpapi.PathShardExpand, nil, req, &out)
	return out, err
}

// ShardPolicies fetches the server's policy store keyed by user name (unlike
// Policies, whose serialization embeds server-local numeric IDs).
func (c *Client) ShardPolicies(ctx context.Context) ([]reachac.ResourcePolicy, error) {
	var out httpapi.ShardPoliciesResponse
	err := c.do(ctx, http.MethodGet, httpapi.PathShardPolicies, nil, nil, &out)
	return out.Policies, err
}

// Policies exports the server's policy store serialization.
func (c *Client) Policies(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+httpapi.PathPolicies, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// SetPolicies replaces the server's policy store with a serialization
// produced by Policies (or reachac.Network.SavePolicies).
func (c *Client) SetPolicies(ctx context.Context, policies []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+httpapi.PathPolicies, bytes.NewReader(policies))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
