package reachac

import "errors"

// Sentinel errors returned (wrapped) by the facade, so callers — the HTTP
// serving layer in particular — can classify failures with errors.Is instead
// of string-matching messages. Every wrapping error keeps its descriptive
// message; the sentinel only adds the machine-checkable identity.
var (
	// ErrUnknownUser marks an operation naming a member that does not exist
	// (an unresolvable name or an out-of-range ID).
	ErrUnknownUser = errors.New("unknown user")
	// ErrDuplicateUser marks an AddUser whose name is already taken.
	ErrDuplicateUser = errors.New("user already exists")
	// ErrUnknownRelationship marks an Unrelate of a relationship (or
	// relationship type) that does not exist.
	ErrUnknownRelationship = errors.New("unknown relationship")
	// ErrDuplicateRelationship marks a Relate of an already-present
	// (from, to, type) triple.
	ErrDuplicateRelationship = errors.New("relationship already exists")
	// ErrSelfRelationship marks a Relate of a member to themself, which the
	// model rejects.
	ErrSelfRelationship = errors.New("self relationship rejected")
	// ErrResourceOwned marks a Share of a resource already registered to a
	// different owner.
	ErrResourceOwned = errors.New("resource is owned by another user")
	// ErrUnknownResource marks a policy or audience operation on a resource
	// no Share ever registered. Access checks deliberately do NOT return it:
	// an unknown resource checks as deny-by-default, per the model.
	ErrUnknownResource = errors.New("unknown resource")
	// ErrReadOnly marks a mutation on a network poisoned read-only by a
	// write-ahead log failure.
	ErrReadOnly = errors.New("network is read-only after WAL failure")
	// ErrClosed marks a mutation on a network after Close.
	ErrClosed = errors.New("network is closed")
	// ErrNotDurable marks a durability-only operation (Checkpoint) on a
	// network not created by Open.
	ErrNotDurable = errors.New("network is not durable")
)
