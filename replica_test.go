package reachac

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"reachac/internal/replica"
	"reachac/internal/wal"
)

// serveLeader mounts a durable network's replication source on a test server.
func serveLeader(t *testing.T, n *Network) *httptest.Server {
	t.Helper()
	src := n.ReplicaSource()
	if src == nil {
		t.Fatal("durable network has no replica source")
	}
	mux := http.NewServeMux()
	src.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// waitReplicaCaughtUp polls until the follower has applied everything the
// leader has made durable.
func waitReplicaCaughtUp(t *testing.T, follower, leader *Network) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		lst := leader.Stats()
		rs := follower.ReplicaStatus()
		if rs.AppliedSeq > lst.WALSegmentSeq ||
			(rs.AppliedSeq == lst.WALSegmentSeq && rs.AppliedOff >= lst.WALSegmentBytes) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never caught up: follower %+v, leader at (%d,%d)",
		follower.ReplicaStatus(), leader.Stats().WALSegmentSeq, leader.Stats().WALSegmentBytes)
}

// TestReplicaDifferentialAllEngines drives the deterministic trace through a
// leader, catches the follower up after every committed step, and asserts
// the replicated state decides identically to the leader under all six
// engine kinds — with a follower restart mid-stream, after which the two
// directories must hold byte-identical logs.
func TestReplicaDifferentialAllEngines(t *testing.T) {
	const seed, steps, restartAt = 11, 14, 7
	trace := makeTrace(seed, steps)

	ldir := t.TempDir()
	leader, err := Open(ldir, WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	srv := serveLeader(t, leader)

	fdir := t.TempDir()
	follower, err := Open(fdir, WithFollow(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i, step := range trace {
		if err := applyStep(leader, step); err != nil {
			t.Fatalf("leader step %d: %v", i, err)
		}
		if i == restartAt {
			// Mid-stream restart: the reopened follower recovers its local
			// mirror and resumes from its own cursor.
			if err := follower.Close(); err != nil {
				t.Fatalf("follower close at step %d: %v", i, err)
			}
			follower, err = Open(fdir, WithFollow(srv.URL))
			if err != nil {
				t.Fatalf("follower reopen at step %d: %v", i, err)
			}
			defer follower.Close()
		}
		waitReplicaCaughtUp(t, follower, leader)
		assertSameDecisions(t, fmt.Sprintf("step %d", i), follower, leader, allEngineKinds)
	}

	// The mirror is byte-identical, not just decision-identical.
	want, err := os.ReadFile(filepath.Join(ldir, "wal-00000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(fdir, "wal-00000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("follower log (%d bytes) differs from leader log (%d bytes)", len(got), len(want))
	}

	// Both chains verify offline — after closing, so the locks are released.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{ldir, fdir} {
		if _, err := VerifyChain(dir); err != nil {
			t.Fatalf("VerifyChain(%s): %v", dir, err)
		}
	}
}

// TestReplicaRejectsMutations: a follower is read-only end to end.
func TestReplicaRejectsMutations(t *testing.T) {
	leader, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	if _, err := leader.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	srv := serveLeader(t, leader)
	follower, err := Open(t.TempDir(), WithFollow(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	waitReplicaCaughtUp(t, follower, leader)

	if _, err := follower.AddUser("bob"); !errorsIsReadOnly(err) {
		t.Fatalf("AddUser on follower: %v, want ErrReadOnly", err)
	}
	if err := follower.Batch(func(tx *Tx) error { return nil }); !errorsIsReadOnly(err) {
		t.Fatalf("Batch on follower: %v, want ErrReadOnly", err)
	}
	if err := follower.LoadPolicies(strings.NewReader("{}")); !errorsIsReadOnly(err) {
		t.Fatalf("LoadPolicies on follower: %v, want ErrReadOnly", err)
	}
	// A follower has no local appending WAL, so Checkpoint refuses too
	// (as not-durable rather than read-only — either way, rejected).
	if err := follower.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on follower succeeded")
	}
	// Reads work: the replicated user resolves.
	if _, ok := follower.UserID("alice"); !ok {
		t.Fatal("replicated user alice not readable on follower")
	}
	st := follower.Stats()
	if !st.Follower || st.ReplicaEpoch == 0 {
		t.Fatalf("follower stats %+v: want Follower=true and a nonzero epoch", st)
	}
}

func errorsIsReadOnly(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrReadOnly.Error())
}

// TestReplicaTransientTailLoss is the regression test for leader-loss
// degradation: when the leader becomes unreachable the follower keeps
// serving its last applied state with the staleness surfaced — connected
// again, it converges with no gap and no duplication.
func TestReplicaTransientTailLoss(t *testing.T) {
	const seed = 23
	trace := makeTrace(seed, 12)

	leader, err := Open(t.TempDir(), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	src := leader.ReplicaSource()
	mux := http.NewServeMux()
	src.Register(mux)

	// A stable URL whose backend can be yanked: down => connections fail.
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			// Sever the connection without a well-formed response.
			hj, ok := w.(http.Hijacker)
			if ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	follower, err := Open(t.TempDir(), WithFollow(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for i := 0; i < 6; i++ {
		if err := applyStep(leader, trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitReplicaCaughtUp(t, follower, leader)
	usersBefore := follower.NumUsers()

	// Yank the leader. The follower must degrade, not die. The long-poll
	// already in flight drains first (it was accepted before the outage),
	// so wait for the disconnect before advancing the leader.
	down.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rs := follower.ReplicaStatus()
		if !rs.Connected && rs.Err != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never noticed the dead leader: %+v", rs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rs := follower.ReplicaStatus()
	if rs.Halted {
		t.Fatalf("a dead leader is transient, not fatal: %+v", rs)
	}
	for i := 6; i < 12; i++ {
		if err := applyStep(leader, trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Reads still serve the pre-outage state, and staleness grows.
	if got := follower.NumUsers(); got != usersBefore {
		t.Fatalf("outage changed follower state: %d users, had %d", got, usersBefore)
	}
	stale1 := follower.Stats().ReplicaStalenessMS
	time.Sleep(30 * time.Millisecond)
	stale2 := follower.Stats().ReplicaStalenessMS
	if stale2 <= stale1 {
		t.Fatalf("staleness did not grow during the outage: %d then %d ms", stale1, stale2)
	}

	// Heal. The follower converges to the full 12-step state.
	down.Store(false)
	waitReplicaCaughtUp(t, follower, leader)
	rs = follower.ReplicaStatus()
	if !rs.Connected || rs.Err != "" || rs.Halted {
		t.Fatalf("healed follower status %+v", rs)
	}
	ref := replayPrefix(t, trace, 12)
	assertSameDecisions(t, "post-heal", follower, ref, []EngineKind{Online, Index})
}

// ---------------------------------------------------------------------------
// Follower SIGKILL: a child process tails a leader served by the parent and
// is killed mid-replication; the reopened directory must recover and resume
// to exact convergence — shipped bytes are fsynced before they are applied,
// so recovery never replays less than what was acknowledged into state.
// ---------------------------------------------------------------------------

const (
	replChildDirEnv    = "REACHAC_REPL_CHILD_DIR"
	replChildLeaderEnv = "REACHAC_REPL_CHILD_LEADER"
)

// TestReplicaChildFollower is the child half: it follows the parent's leader
// until killed. A no-op under normal test runs.
func TestReplicaChildFollower(t *testing.T) {
	dir := os.Getenv(replChildDirEnv)
	if dir == "" {
		t.Skip("replica child: run by TestReplicaKillFollower")
	}
	n, err := Open(dir, WithFollow(os.Getenv(replChildLeaderEnv)))
	if err != nil {
		t.Fatalf("child follower open: %v", err)
	}
	defer n.Close()
	time.Sleep(30 * time.Second) // replicate until the parent kills us
}

func TestReplicaKillFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a subprocess")
	}
	const seed, steps = 31, 400
	trace := makeTrace(seed, steps)
	leader, err := Open(t.TempDir(), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	srv := serveLeader(t, leader)

	fdir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestReplicaChildFollower$", "-test.v")
	cmd.Env = append(os.Environ(), replChildDirEnv+"="+fdir, replChildLeaderEnv+"="+srv.URL)
	out := &strings.Builder{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Feed the leader while the child replicates, then kill the child cold.
	for i, step := range trace {
		if err := applyStep(leader, step); err != nil {
			t.Fatalf("leader step %d: %v", i, err)
		}
		if i == steps/2 {
			time.Sleep(50 * time.Millisecond) // let the child get mid-stream
		}
	}
	time.Sleep(100 * time.Millisecond)
	_ = cmd.Process.Kill()
	if err := cmd.Wait(); err == nil {
		t.Log("child exited before the kill; continuing with its directory")
	} else if !strings.Contains(err.Error(), "killed") && !strings.Contains(err.Error(), "signal") {
		t.Fatalf("child failed on its own: %v\n%s", err, out.String())
	}

	// The killed follower's directory reopens (possibly with a torn tail,
	// which is dropped) and resumes to convergence.
	follower, err := Open(fdir, WithFollow(srv.URL))
	if err != nil {
		t.Fatalf("reopening killed follower dir: %v", err)
	}
	defer follower.Close()
	waitReplicaCaughtUp(t, follower, leader)
	ref := replayPrefix(t, trace, steps)
	assertSameDecisions(t, "post-kill", follower, ref, []EngineKind{Online, Closure, Index})

	// And its mirrored log still chain-verifies against the leader's.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	report, err := VerifyChain(fdir)
	if err != nil {
		t.Fatalf("VerifyChain after kill+resume: %v", err)
	}
	if report.Groups != steps {
		t.Fatalf("chain verified %d groups, want %d", report.Groups, steps)
	}
}

// TestPromoteFollower is the failover runbook as a test: kill the leader,
// restart the caught-up follower's directory in leader mode, and keep
// writing — under a higher epoch, with the full history intact.
func TestPromoteFollower(t *testing.T) {
	leader, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	alice, err := leader.AddUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Share("doc", alice, "friend+[1,1]"); err != nil {
		t.Fatal(err)
	}
	srv := serveLeader(t, leader)
	oldEpoch := leader.ReplicaEpoch()

	fdir := t.TempDir()
	follower, err := Open(fdir, WithFollow(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitReplicaCaughtUp(t, follower, leader)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}

	// Promotion: an ordinary leader open on the replicated directory.
	promoted, err := Open(fdir)
	if err != nil {
		t.Fatalf("promoting follower dir: %v", err)
	}
	defer promoted.Close()
	if promoted.Follower() {
		t.Fatal("promoted network still reports follower")
	}
	if got := promoted.ReplicaEpoch(); got <= oldEpoch {
		t.Fatalf("promoted epoch %d does not supersede the dead leader's %d", got, oldEpoch)
	}
	if _, ok := promoted.UserID("alice"); !ok {
		t.Fatal("promoted leader lost replicated user alice")
	}
	// It accepts writes and serves followers of its own.
	if _, err := promoted.AddUser("bob"); err != nil {
		t.Fatalf("promoted leader rejects writes: %v", err)
	}
	if promoted.ReplicaSource() == nil {
		t.Fatal("promoted leader is not followable")
	}
}

// TestFencedLeaderRejectsWrites is the split-brain regression test: a leader
// that keeps serving after its follower was promoted must fence itself the
// moment a replication request proves a higher epoch exists — from then on
// every mutation is ErrReadOnly, while reads (and the old history's tail)
// keep serving. Two daemons over the same shipped history: old leader A,
// promoted follower B.
func TestFencedLeaderRejectsWrites(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	alice, err := a.AddUser("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Share("doc", alice, "friend+[1,1]"); err != nil {
		t.Fatal(err)
	}
	srvA := serveLeader(t, a)

	bdir := t.TempDir()
	follower, err := Open(bdir, WithFollow(srvA.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitReplicaCaughtUp(t, follower, a)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	// Promote B while A is STILL SERVING — the failover scenario fencing
	// exists for. B's leader open bumps the shared history's epoch past A's.
	b, err := Open(bdir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.ReplicaEpoch() <= a.ReplicaEpoch() {
		t.Fatalf("promoted epoch %d does not supersede %d", b.ReplicaEpoch(), a.ReplicaEpoch())
	}

	// A request carrying a LOWER epoch (a lagging stale replica) conflicts
	// but proves nothing newer: A must keep accepting writes.
	rc := replica.NewClient(srvA.URL, nil)
	if _, err := rc.Tail(context.Background(), a.ReplicaEpoch()-1, 1, 0, 0); err == nil {
		t.Fatal("lower-epoch tail did not conflict")
	}
	if a.Fenced() {
		t.Fatal("lower-epoch request fenced the leader")
	}
	if _, err := a.AddUser("bob"); err != nil {
		t.Fatalf("unfenced leader rejects writes: %v", err)
	}

	// A request carrying B's HIGHER epoch (B's own replica chain, or a
	// health prober pointed at the new leadership) fences A.
	if _, err := rc.Tail(context.Background(), b.ReplicaEpoch(), 1, 0, 0); err == nil {
		t.Fatal("higher-epoch tail did not conflict")
	}
	if !a.Fenced() {
		t.Fatal("higher-epoch request did not fence the leader")
	}
	if _, err := a.AddUser("carol"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AddUser on fenced leader: %v, want ErrReadOnly", err)
	}
	if err := a.Batch(func(tx *Tx) error { return nil }); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Batch on fenced leader: %v, want ErrReadOnly", err)
	}
	// Reads keep serving the pre-failover state.
	if _, ok := a.UserID("alice"); !ok {
		t.Fatal("fenced leader lost read access to alice")
	}
	st := a.Stats()
	if !st.Fenced || st.FencedByEpoch != b.ReplicaEpoch() {
		t.Fatalf("fenced stats %+v: want Fenced=true by epoch %d", st, b.ReplicaEpoch())
	}
	// The new leader keeps accepting writes, and the old history survived
	// the handoff.
	if _, err := b.AddUser("dave"); err != nil {
		t.Fatalf("promoted leader rejects writes: %v", err)
	}
	if _, ok := b.UserID("alice"); !ok {
		t.Fatal("promoted leader lost replicated user alice")
	}

	// ObserveEpoch is idempotent and monotonic; stale observations after
	// fencing change nothing, and non-durable networks never fence.
	if !a.ObserveEpoch(b.ReplicaEpoch() - 1) {
		t.Fatal("fenced leader forgot it was fenced")
	}
	mem := New()
	if mem.ObserveEpoch(99) || mem.Fenced() {
		t.Fatal("non-durable network fenced itself")
	}
}

// TestVerifyChainFacade pins the offline verifier's facade behavior: a clean
// directory verifies; one flipped byte anywhere is located.
func TestVerifyChainFacade(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(dir, WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	trace := makeTrace(3, 8)
	for _, step := range trace {
		if err := applyStep(n, step); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	report, err := VerifyChain(dir)
	if err != nil {
		t.Fatalf("clean dir: %v", err)
	}
	if report.Groups != 8 {
		t.Fatalf("verified %d groups, want 8", report.Groups)
	}

	seg := filepath.Join(dir, "wal-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)/2] ^= 0x01
	if err := os.WriteFile(seg, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(dir); err == nil {
		t.Fatal("flipped byte went undetected")
	} else {
		var ce *wal.ChainError
		if !errors.As(err, &ce) {
			t.Fatalf("tamper error %v is not a *wal.ChainError", err)
		}
	}
}
