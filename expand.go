package reachac

import (
	"fmt"
	"sync"

	"reachac/internal/graph"
	"reachac/internal/pathexpr"
	"reachac/internal/ring"
)

// This file is the shard-side half of the distributed reachability search
// (see internal/shard). The router runs the product-BFS of a path expression
// over the PARTITIONED graph: users are replicated to every shard, but each
// shard stores only the edges incident to the nodes it owns on the
// consistent-hash ring. One ShardExpand call advances the search over one
// shard's local subgraph: it exhausts every state whose node the shard owns
// (local multi-hop progress is free), collects accepted requesters, and
// returns the boundary frontier — states that crossed onto nodes another
// shard owns, whose complete adjacency only that owner has. The router
// re-dispatches the boundary frontier to the owning shards until it drains,
// deduplicating states globally; that exit set IS the dynamic boundary
// summary that keeps multi-hop reachability across the partition cut exact.

// ShardState is one product-search state: a node (by name — IDs are not
// comparable across shards), the path step being matched, and the
// canonicalized count of edges consumed within that step (see search.dKey).
type ShardState struct {
	Name string `json:"name"`
	Step int    `json:"step"`
	D    int    `json:"d"`
}

// ShardExpandRequest asks one shard to advance the distributed search.
type ShardExpandRequest struct {
	// Path is the canonical path expression being matched.
	Path string `json:"path"`
	// Shards/VNodes/Self are the ring parameters: total shard count, virtual
	// nodes per shard (0 = ring.DefaultVNodes) and this backend's index.
	// They let a stateless shard classify which generated states it owns.
	Shards int `json:"shards"`
	VNodes int `json:"vnodes,omitempty"`
	Self   int `json:"self"`
	// States is the frontier slice this shard owns.
	States []ShardState `json:"states,omitempty"`
	// Requester, when set, turns the sweep into a point query: the search
	// stops as soon as that name is accepted (Found in the response).
	Requester string `json:"requester,omitempty"`
	// Resolve asks the shard to report which of these user names do not
	// exist (users are replicated everywhere, so any shard can answer).
	Resolve []string `json:"resolve,omitempty"`
	// Retired asks the shard to report EVERY state this call retired, not
	// just the boundary exits. The router needs the complete retired set
	// when the sweep builds a cached audience: incremental maintenance
	// reasons from "state absent ⇒ edge irrelevant", which only holds over
	// a complete set. Point queries and uncached sweeps leave it false.
	Retired bool `json:"retired,omitempty"`
}

// ShardExpandResponse is one shard's contribution to the search round.
type ShardExpandResponse struct {
	// Accepted lists nodes that closed the final step (audience members).
	Accepted []string `json:"accepted,omitempty"`
	// Exits is the boundary frontier: states at nodes other shards own,
	// which the router must re-dispatch. Depth counters are canonicalized.
	Exits []ShardState `json:"exits,omitempty"`
	// Found reports the point query's Requester was accepted.
	Found bool `json:"found,omitempty"`
	// Missing lists the Resolve names this shard does not know.
	Missing []string `json:"missing,omitempty"`
	// Retired echoes every state retired by this call (locally-explored
	// states AND exits) when the request set Retired.
	Retired []ShardState `json:"retired_states,omitempty"`
}

// pathCache memoizes parsed path expressions: a hot shard re-receives the
// same handful of canonical paths on every expand round. Parsed paths are
// read-only. Bounded because the expressions arrive over the wire — an
// adversarial client must not grow the map without limit.
var (
	pathCacheMu sync.RWMutex
	pathCache   = make(map[string]*pathexpr.Path)
)

const pathCacheMax = 256

func cachedParsePath(expr string) (*pathexpr.Path, error) {
	pathCacheMu.RLock()
	p := pathCache[expr]
	pathCacheMu.RUnlock()
	if p != nil {
		return p, nil
	}
	p, err := pathexpr.Parse(expr)
	if err != nil {
		return nil, err
	}
	pathCacheMu.Lock()
	if len(pathCache) < pathCacheMax {
		pathCache[expr] = p
	}
	pathCacheMu.Unlock()
	return p, nil
}

// ringCache memoizes rings by (shards, vnodes): construction is cheap but
// per-request on a hot shard adds up. The parameter space in one deployment
// is a handful of values, so an unbounded map is fine.
var ringCache sync.Map // [2]int -> *ring.Ring

func cachedRing(shards, vnodes int) (*ring.Ring, error) {
	key := [2]int{shards, vnodes}
	if r, ok := ringCache.Load(key); ok {
		return r.(*ring.Ring), nil
	}
	r, err := ring.New(shards, vnodes)
	if err != nil {
		return nil, err
	}
	actual, _ := ringCache.LoadOrStore(key, r)
	return actual.(*ring.Ring), nil
}

// shardStep is a path step compiled against the view's graph, mirroring the
// oracle semantics of internal/search exactly (dKey collapse, close/continue
// windows, predicates evaluated on the node a step ends at).
type shardStep struct {
	label     graph.Label
	labelOK   bool
	dir       pathexpr.Direction
	min, max  int
	unbounded bool
	preds     []pathexpr.Pred
}

// maxShardDepth mirrors search.maxDepthLimit: depths beyond it are rejected
// rather than searched.
const maxShardDepth = 1 << 15

func compileShardSteps(g *graph.Graph, p *pathexpr.Path) ([]shardStep, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	steps := make([]shardStep, len(p.Steps))
	for i, st := range p.Steps {
		if st.MaxDepth >= maxShardDepth || st.MinDepth >= maxShardDepth {
			return nil, fmt.Errorf("reachac: shard expand: step %d depth exceeds limit %d", i+1, maxShardDepth)
		}
		label, ok := g.LookupLabel(st.Label)
		steps[i] = shardStep{
			label:     label,
			labelOK:   ok,
			dir:       st.Dir,
			min:       st.MinDepth,
			max:       st.MaxDepth,
			unbounded: st.Unbounded,
			preds:     st.Preds,
		}
	}
	return steps, nil
}

func (s *shardStep) predsHold(g *graph.Graph, n graph.NodeID) bool {
	for _, p := range s.preds {
		if !p.Eval(g.Node(n).Attrs) {
			return false
		}
	}
	return true
}

func (s *shardStep) dKey(d int) int {
	if s.unbounded && d > s.min {
		return s.min
	}
	return d
}

func (s *shardStep) mayContinue(d int) bool { return s.unbounded || d < s.max }

func (s *shardStep) mayClose(d int) bool { return d >= s.min }

// ShardExpand advances a distributed reachability search over the view's
// local subgraph; see the file comment for the protocol. A label absent from
// THIS shard's graph simply matches no local edges — absence is not global
// unreachability, another shard may hold edges under it.
func (v *View) ShardExpand(req ShardExpandRequest) (ShardExpandResponse, error) {
	var resp ShardExpandResponse
	g := v.s.g
	for _, name := range req.Resolve {
		if _, ok := g.NodeByName(name); !ok {
			resp.Missing = append(resp.Missing, name)
		}
	}
	if len(req.States) == 0 {
		return resp, nil
	}
	p, err := cachedParsePath(req.Path)
	if err != nil {
		return resp, err
	}
	steps, err := compileShardSteps(g, p)
	if err != nil {
		return resp, err
	}
	rg, err := cachedRing(req.Shards, req.VNodes)
	if err != nil {
		return resp, err
	}
	if req.Self < 0 || req.Self >= rg.Shards() {
		return resp, fmt.Errorf("reachac: shard expand: self index %d outside ring of %d", req.Self, rg.Shards())
	}

	// States are keyed by local node ID inside this call — integer map keys
	// hash far cheaper than the wire form's name strings; names only matter
	// at the boundary (exit emission and ring ownership).
	type localState struct {
		node    graph.NodeID
		step, d int32
	}
	seen := make(map[localState]struct{}, len(req.States)*4)
	var queue []localState
	for _, st := range req.States {
		if st.Step < 0 || st.Step >= len(steps) || st.D < 0 {
			return resp, fmt.Errorf("reachac: shard expand: state (%q,%d,%d) outside path of %d steps", st.Name, st.Step, st.D, len(steps))
		}
		id, ok := g.NodeByName(st.Name)
		if !ok {
			// A user this shard has not (yet) replicated: nothing to expand
			// locally. The router fails checks closed on shard errors, not on
			// lag, so an under-approximation here is the safe direction.
			continue
		}
		key := localState{node: id, step: int32(st.Step), d: int32(steps[st.Step].dKey(st.D))}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		queue = append(queue, key)
	}

	accepted := make(map[graph.NodeID]struct{})
	exits := make(map[localState]struct{})
	found := false
	var reqID graph.NodeID
	reqOK := false
	if req.Requester != "" {
		reqID, reqOK = g.NodeByName(req.Requester)
	}

	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		st := &steps[cur.step]
		if !st.labelOK {
			// The step's label never occurs locally: no local edge can match,
			// and any cross-shard continuation already arrived as a state at
			// a node another shard owns (an exit recorded when generated).
			continue
		}

		// expand consumes one edge of the current step from cur.node,
		// mirroring search.Engine.Witness: close the step when its depth
		// window and end-of-step predicates allow (the last step accepting
		// the reached node), and/or continue consuming within the step.
		expand := func(next graph.NodeID) bool {
			d := int(cur.d) + 1
			if st.mayClose(d) && st.predsHold(g, next) {
				if int(cur.step) == len(steps)-1 {
					if _, dup := accepted[next]; !dup {
						accepted[next] = struct{}{}
						if reqOK && next == reqID {
							found = true
							return true
						}
					}
				} else {
					ns := localState{node: next, step: cur.step + 1, d: 0}
					if _, dup := seen[ns]; !dup {
						seen[ns] = struct{}{}
						if rg.Owner(g.Node(next).Name) == req.Self {
							queue = append(queue, ns)
						} else {
							exits[ns] = struct{}{}
						}
					}
				}
			}
			if st.mayContinue(d) {
				ns := localState{node: next, step: cur.step, d: int32(st.dKey(d))}
				if _, dup := seen[ns]; !dup {
					seen[ns] = struct{}{}
					if rg.Owner(g.Node(next).Name) == req.Self {
						queue = append(queue, ns)
					} else {
						exits[ns] = struct{}{}
					}
				}
			}
			return false
		}

		if st.dir == pathexpr.Out || st.dir == pathexpr.Both {
			g.OutEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label != st.label {
					return true
				}
				return !expand(edge.To)
			})
		}
		if !found && (st.dir == pathexpr.In || st.dir == pathexpr.Both) {
			g.InEdges(cur.node, func(edge graph.Edge) bool {
				if edge.Label != st.label {
					return true
				}
				return !expand(edge.From)
			})
		}
	}

	resp.Found = found
	if len(accepted) > 0 {
		resp.Accepted = make([]string, 0, len(accepted))
		for id := range accepted {
			resp.Accepted = append(resp.Accepted, g.Node(id).Name)
		}
	}
	if len(exits) > 0 {
		resp.Exits = make([]ShardState, 0, len(exits))
		for st := range exits {
			resp.Exits = append(resp.Exits, ShardState{Name: g.Node(st.node).Name, Step: int(st.step), D: int(st.d)})
		}
	}
	if req.Retired {
		resp.Retired = make([]ShardState, 0, len(seen))
		for st := range seen {
			resp.Retired = append(resp.Retired, ShardState{Name: g.Node(st.node).Name, Step: int(st.step), D: int(st.d)})
		}
	}
	return resp, nil
}

// PolicyRule is one access rule in name-keyed form (see PolicyDump).
type PolicyRule struct {
	ID string `json:"id"`
	// Paths are the rule's conditions in canonical syntax (all must hold).
	Paths []string `json:"paths"`
}

// ResourcePolicy is one resource's registration and rules in name-keyed form.
type ResourcePolicy struct {
	Resource string       `json:"resource"`
	Owner    string       `json:"owner"`
	Rules    []PolicyRule `json:"rules,omitempty"`
}

// PolicyDump exports the view's policy store keyed by user NAME rather than
// node ID. The SavePolicies serialization embeds shard-local numeric IDs,
// which mean nothing to another process; the shard router rebuilds its
// routing cache from this form at startup.
func (v *View) PolicyDump() []ResourcePolicy {
	store := v.s.store
	resources := store.Resources()
	out := make([]ResourcePolicy, 0, len(resources))
	for _, res := range resources {
		ownerID, ok := store.Owner(res)
		if !ok {
			continue
		}
		ownerName, ok := v.UserName(ownerID)
		if !ok {
			continue
		}
		rp := ResourcePolicy{Resource: string(res), Owner: ownerName}
		for _, r := range store.RulesFor(res) {
			pr := PolicyRule{ID: r.ID, Paths: make([]string, len(r.Conditions))}
			for i, c := range r.Conditions {
				pr.Paths[i] = c.Path.String()
			}
			rp.Rules = append(rp.Rules, pr)
		}
		out = append(out, rp)
	}
	return out
}
