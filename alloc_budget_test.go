//go:build !race

// Allocation budgets for the facade read path, the user-facing counterpart
// of the zero-allocation assertions on search.Engine (internal/search's
// alloc_test.go). The facade cannot be literally allocation-free — audience
// results are copied out of the shared cache, batch decisions fan out over
// goroutines — so each operation gets an explicit measured budget instead,
// and CI fails when a regression pushes past it. Excluded under the race
// detector, whose instrumentation perturbs allocation behavior.
package reachac

import (
	"fmt"
	"testing"
)

// allocNet builds a 200-member network with a shared album and warms the
// snapshot: decision cache, plan cache, CSR and audience cache all hot.
func allocNet(t testing.TB) (*Network, []UserID) {
	t.Helper()
	n := New()
	const members = 200
	ids := make([]UserID, members)
	for i := range ids {
		ids[i] = n.MustAddUser(fmt.Sprintf("u%03d", i))
	}
	for i := 0; i < members; i++ {
		if err := n.Relate(ids[i], ids[(i+1)%members], "friend"); err != nil {
			t.Fatal(err)
		}
		if err := n.Relate(ids[i], ids[(i+7)%members], "colleague"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Share("album", ids[0], "friend+[1,3]"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := n.CanAccess("album", ids[21]); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Audience("album"); err != nil {
			t.Fatal(err)
		}
	}
	return n, ids
}

// TestCanAccessAllocBudget: a warmed CanAccess is a snapshot pin plus a
// decision-cache hit and allocates nothing at all.
func TestCanAccessAllocBudget(t *testing.T) {
	n, ids := allocNet(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := n.CanAccess("album", ids[21]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warmed CanAccess allocates %.2f objects/op, budget 0", allocs)
	}
}

// TestAudienceAllocBudget: a warmed Audience is served from the audience
// cache; the only allocations assemble the fresh result slice handed to the
// caller (measured: 2 objects/op).
func TestAudienceAllocBudget(t *testing.T) {
	n, _ := allocNet(t)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := n.Audience("album"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("warmed Audience allocates %.2f objects/op, budget 2", allocs)
	}
}

// TestCanAccessAllAllocBudget: a warmed 16-requester batch pays for the
// result slice and the worker fan-out, independent of batch size (measured:
// 2 objects/op; budget 4 leaves room for scheduler-dependent goroutine
// bookkeeping).
func TestCanAccessAllAllocBudget(t *testing.T) {
	n, ids := allocNet(t)
	reqs := ids[:16]
	if _, err := n.CanAccessAll("album", reqs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := n.CanAccessAll("album", reqs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("warmed CanAccessAll allocates %.2f objects/op, budget 4", allocs)
	}
}
