package reachac

import "sync/atomic"

// Stats is a point-in-time snapshot of the network's operation counters,
// sized for a monitoring endpoint: cheap to collect, monotonic within one
// process lifetime (the counters restart at zero on reopen).
type Stats struct {
	// Users, Relationships and Resources size the current state.
	Users         int `json:"users"`
	Relationships int `json:"relationships"`
	Resources     int `json:"resources"`
	// Engine names the selected evaluator kind.
	Engine string `json:"engine"`
	// Durable reports whether mutations persist to a write-ahead log.
	Durable bool `json:"durable"`

	// Checks counts single access decisions (CanAccess and CheckPath,
	// including every per-requester decision of a CanAccessAll batch);
	// BatchChecks counts CanAccessAll calls; Audiences counts audience
	// enumerations (resource- and path-based).
	Checks      uint64 `json:"checks"`
	BatchChecks uint64 `json:"batch_checks"`
	Audiences   uint64 `json:"audiences"`

	// Mutations counts acknowledged operations (records kept only for
	// replay alignment — a failed sub-transaction's node additions — are
	// excluded); Batches counts the committed Batch groups carrying them.
	// Mutations/Batches is the achieved write coalescing factor.
	Mutations uint64 `json:"mutations"`
	Batches   uint64 `json:"batches"`

	// Republications counts engine snapshot publications (the slow path a
	// reader pays after a change).
	Republications uint64 `json:"republications"`

	// DecisionCacheHits/Misses count decision-cache lookups across every
	// snapshot's cache (the counter block is network-lifetime);
	// DecisionCacheEvictions counts entries dropped by per-delta label
	// intersection when a cache is carried across a graph mutation.
	DecisionCacheHits      uint64 `json:"decision_cache_hits"`
	DecisionCacheMisses    uint64 `json:"decision_cache_misses"`
	DecisionCacheEvictions uint64 `json:"decision_cache_evictions"`

	// PlannerRoute* count reachability queries answered per strategy when
	// planner routing is enabled (WithPlanner); all zero otherwise.
	// PlannerMigrations counts applied whole-network engine migrations and
	// PlannerRecommended names the planner's current engine recommendation
	// (empty before the first assessment window, and without WithPlanner).
	PlannerRouteAudience    uint64 `json:"planner_route_audience"`
	PlannerRouteFlatForward uint64 `json:"planner_route_flat_forward"`
	PlannerRouteFlatReverse uint64 `json:"planner_route_flat_reverse"`
	PlannerRoutePrimary     uint64 `json:"planner_route_primary"`
	PlannerMigrations       uint64 `json:"planner_migrations"`
	PlannerRecommended      string `json:"planner_recommended,omitempty"`

	// Checkpoints counts checkpoints taken; CheckpointsSkipped counts
	// Checkpoint calls satisfied as no-ops because the log was already fully
	// covered by the last checkpoint.
	Checkpoints        uint64 `json:"checkpoints"`
	CheckpointsSkipped uint64 `json:"checkpoints_skipped"`

	// WALAppends counts appended record groups, WALFsyncs the fsyncs that
	// made them (and rotations/closes) durable; WALFsyncs < Mutations means
	// group commit amortized fsync cost across writers. WALSegmentBytes and
	// WALSegmentSeq describe the live segment. All four are zero on
	// non-durable networks.
	WALAppends      uint64 `json:"wal_appends"`
	WALFsyncs       uint64 `json:"wal_fsyncs"`
	WALSegmentBytes int64  `json:"wal_segment_bytes"`
	WALSegmentSeq   uint64 `json:"wal_segment_seq"`

	// AuditRetained is the current length of the retained decision trail.
	AuditRetained int `json:"audit_retained"`

	// Follower reports a read replica (opened with WithFollow); the
	// Replica* fields below are its staleness bound. ReplicaEpoch is the
	// leadership epoch (set on leaders too). ReplicaAppliedSeq/Off is the
	// replication cursor — every leader byte before it is verified, persisted
	// and applied — and ReplicaLeaderSeq/Off the leader's durable position at
	// last contact; ReplicaLagBytes is their distance. ReplicaStalenessMS is
	// the wall-clock milliseconds since the last successful leader exchange:
	// bounded while connected, growing while disconnected. ReplicaHalted
	// means replication stopped on a non-retryable fault (epoch regression,
	// divergence, tamper) and the replica serves frozen state. All are
	// gauges, passed through Delta unchanged.
	// Fenced reports a leader that observed a higher leadership epoch
	// (FencedByEpoch) through its replication endpoints and now rejects
	// mutations with ErrReadOnly; both are gauges.
	Fenced        bool   `json:"fenced,omitempty"`
	FencedByEpoch uint64 `json:"fenced_by_epoch,omitempty"`

	Follower           bool   `json:"follower,omitempty"`
	ReplicaEpoch       uint64 `json:"replica_epoch,omitempty"`
	ReplicaConnected   bool   `json:"replica_connected,omitempty"`
	ReplicaHalted      bool   `json:"replica_halted,omitempty"`
	ReplicaAppliedSeq  uint64 `json:"replica_applied_seq,omitempty"`
	ReplicaAppliedOff  int64  `json:"replica_applied_off,omitempty"`
	ReplicaGroups      uint64 `json:"replica_groups,omitempty"`
	ReplicaLeaderSeq   uint64 `json:"replica_leader_seq,omitempty"`
	ReplicaLeaderOff   int64  `json:"replica_leader_off,omitempty"`
	ReplicaLagBytes    int64  `json:"replica_lag_bytes,omitempty"`
	ReplicaStalenessMS int64  `json:"replica_staleness_ms,omitempty"`
}

// Delta returns the counter-by-counter difference s - prev, for bounding
// the activity of one measured window (acbench records Stats before and
// after each scenario and reports the difference). The size fields
// (Users, Relationships, Resources, AuditRetained) and identity fields
// (Engine, Durable, WALSegmentBytes, WALSegmentSeq) carry s's values
// unchanged — they are gauges, not monotonic counters.
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.Checks -= prev.Checks
	d.BatchChecks -= prev.BatchChecks
	d.Audiences -= prev.Audiences
	d.Mutations -= prev.Mutations
	d.Batches -= prev.Batches
	d.Republications -= prev.Republications
	d.DecisionCacheHits -= prev.DecisionCacheHits
	d.DecisionCacheMisses -= prev.DecisionCacheMisses
	d.DecisionCacheEvictions -= prev.DecisionCacheEvictions
	d.PlannerRouteAudience -= prev.PlannerRouteAudience
	d.PlannerRouteFlatForward -= prev.PlannerRouteFlatForward
	d.PlannerRouteFlatReverse -= prev.PlannerRouteFlatReverse
	d.PlannerRoutePrimary -= prev.PlannerRoutePrimary
	d.PlannerMigrations -= prev.PlannerMigrations
	d.Checkpoints -= prev.Checkpoints
	d.CheckpointsSkipped -= prev.CheckpointsSkipped
	d.WALAppends -= prev.WALAppends
	d.WALFsyncs -= prev.WALFsyncs
	return d
}

// counters holds the network's atomically-updated operation tallies; see
// Stats for field meanings.
type counters struct {
	checks         atomic.Uint64
	batchChecks    atomic.Uint64
	audiences      atomic.Uint64
	mutations      atomic.Uint64
	batches        atomic.Uint64
	republications atomic.Uint64
	ckptTaken      atomic.Uint64
	ckptSkipped    atomic.Uint64
}

// Stats collects the network's operation counters and current sizes. It is
// safe for concurrent use; the sizes are read under the mutation lock, the
// counters are atomic.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	users, rels, kind := n.g.NumNodes(), n.g.NumEdges(), n.kind
	n.mu.Unlock()
	st := Stats{
		Users:              users,
		Relationships:      rels,
		Resources:          len(n.store.Load().Resources()),
		Engine:             kind.String(),
		Durable:            n.wal != nil,
		Checks:             n.ctr.checks.Load(),
		BatchChecks:        n.ctr.batchChecks.Load(),
		Audiences:          n.ctr.audiences.Load(),
		Mutations:          n.ctr.mutations.Load(),
		Batches:            n.ctr.batches.Load(),
		Republications:     n.ctr.republications.Load(),
		Checkpoints:        n.ctr.ckptTaken.Load(),
		CheckpointsSkipped: n.ctr.ckptSkipped.Load(),
		AuditRetained:      n.audit.Len(),
	}
	pc := n.planner.Counters()
	st.DecisionCacheHits = pc.CacheHits
	st.DecisionCacheMisses = pc.CacheMisses
	st.DecisionCacheEvictions = pc.CacheEvictions
	st.PlannerRouteAudience = pc.RouteAudience
	st.PlannerRouteFlatForward = pc.RouteFlatForward
	st.PlannerRouteFlatReverse = pc.RouteFlatReverse
	st.PlannerRoutePrimary = pc.RoutePrimary
	st.PlannerMigrations = pc.Migrations
	if rec, ok := n.planner.Recommended(); ok {
		st.PlannerRecommended = EngineKind(rec).String()
	}
	if n.wal != nil {
		st.WALAppends = n.wal.Appends()
		st.WALFsyncs = n.wal.Fsyncs()
		st.WALSegmentBytes = n.wal.Size()
		st.WALSegmentSeq = n.wal.Seq()
	}
	if fe := n.fencedEpoch.Load(); fe != 0 {
		st.Fenced = true
		st.FencedByEpoch = fe
	}
	n.replicaStats(&st)
	return st
}
